"""Deterministic fault injection for the checking pipeline.

The resilience layer (worker supervision, hang watchdog, poison-batch
bisection, cache quarantine) only earns its keep if every recovery
path is *testable on demand*.  This module is the chaos harness that
makes it so: a :class:`FaultPlan` is a seeded, fully explicit schedule
of failures to inject at well-defined points of the parallel pipeline.
It is wired through ``vaultc check --inject-faults SPEC`` and the
``VAULTC_FAULTS`` environment variable **for test use only** — a plan
never activates unless one of those is given.

Injection points
----------------

Worker-side faults key off the **dispatch id**: the parent stamps
every batch command frame with a monotonically increasing sequence
number, so a fault pinned to dispatch ``D`` fires exactly once — the
retry of the same batch travels under a fresh id and succeeds.  That
is what makes chaos runs deterministic and convergent.

==================  =======================================================
``crash@D``         the worker hard-exits (as if SIGKILLed) while
                    processing dispatch ``D``
``hang@D``          the worker sleeps forever on dispatch ``D`` (the
                    parent's watchdog must SIGKILL it)
``eof@D``           the worker closes its result pipe without replying
``garbage@D``       the worker replies with a well-framed but
                    unpicklable payload
``poison:QUAL``     the worker hard-exits whenever it *starts checking*
                    function ``QUAL`` — unlike the dispatch faults this
                    fires every time, which is what forces the parent's
                    bisection to isolate the function
``flip-cache``      the parent flips one byte (seeded offset) of the
                    summary-cache file immediately after writing it, so
                    the *next* load sees on-disk corruption
``seed=N``          seeds the offset/choice RNG (default 0)
==================  =======================================================

Wire-level faults key off the **request index**: the chaos proxy
(:class:`repro.server.chaos.ChaosProxy`) numbers every daemon request
it relays, so a fault pinned to request ``R`` fires exactly once and
the client's retry of the same check travels under a fresh index.
The daemon-level resilience layer (admission control, client retry,
supervision) must recover byte-identically from every one of these —
``make daemon-chaos-smoke`` is the gate.

===================  ======================================================
``torn@R``           the reply frame is cut off halfway, then the
                     connection closes (EOF mid-frame at the client)
``garbage-frame@R``  the reply is a well-framed but undecodable payload
``oversize@R``       the reply header announces a >64MB frame, which
                     the client must reject before allocating
``disconnect@R``     the connection drops right after the request,
                     before any reply byte
``stall@R``          the peer stops responding but keeps the connection
                     open (the client's read timeout must fire)
``kill@R``           the daemon is killed mid-check (the proxy injects
                     the ``test_die`` chaos hook into the request)
``enospc``           the next shared-CAS write fails with ``ENOSPC``
                     (``enospc@N`` arms N writes); the store must
                     degrade to a miss, never a wrong replay
===================  ======================================================

``crash@0-3`` ranges and bare kinds (``crash`` = ``crash@0``) are
accepted; parts are comma-separated, e.g.::

    VAULTC_FAULTS='crash@0,crash@1,hang@2' vaultc check big.vlt --jobs 4

Fault plans are plain picklable data and are *inherited by fork*:
pool workers consult the same plan object the parent parsed, and the
dispatch-id keying keeps both sides' views consistent without any
shared mutable state.  The only mutable member is the parent-side
``flip-cache`` budget, which never crosses a fork.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterable, Optional, Set, Tuple

__all__ = ["FaultError", "FaultPlan", "DISPATCH_FAULT_KINDS",
           "WIRE_FAULT_KINDS"]

#: worker-side fault kinds keyed by dispatch id, in precedence order
#: (a dispatch named under several kinds takes the first match).
DISPATCH_FAULT_KINDS: Tuple[str, ...] = ("crash", "hang", "eof", "garbage")

#: socket-level fault kinds keyed by request index, in precedence
#: order; acted out by :class:`repro.server.chaos.ChaosProxy`.
WIRE_FAULT_KINDS: Tuple[str, ...] = ("torn", "garbage-frame", "oversize",
                                     "disconnect", "stall", "kill")

#: spec name -> FaultPlan attribute for the wire kinds.
_WIRE_ATTRS = {"torn": "torn", "garbage-frame": "garbage_frame",
               "oversize": "oversize", "disconnect": "disconnect",
               "stall": "stall", "kill": "kill"}


class FaultError(ValueError):
    """A fault spec string that does not parse."""


def _parse_ids(text: str) -> Set[int]:
    """``"3"`` -> {3}; ``"0-2"`` -> {0, 1, 2}."""
    lo, dash, hi = text.partition("-")
    try:
        if dash:
            start, stop = int(lo), int(hi)
            if stop < start:
                raise ValueError
            return set(range(start, stop + 1))
        return {int(lo)}
    except ValueError:
        raise FaultError(f"bad dispatch id {text!r} "
                         "(expected N or N-M)") from None


class FaultPlan:
    """A deterministic schedule of injected failures.

    All trigger predicates are pure functions of their coordinates
    (dispatch id / qualified name), so a plan forked into a worker
    behaves identically to the parent's copy.
    """

    def __init__(self,
                 crash: Iterable[int] = (),
                 hang: Iterable[int] = (),
                 eof: Iterable[int] = (),
                 garbage: Iterable[int] = (),
                 poison: Iterable[str] = (),
                 cache_flips: int = 0,
                 torn: Iterable[int] = (),
                 garbage_frame: Iterable[int] = (),
                 oversize: Iterable[int] = (),
                 disconnect: Iterable[int] = (),
                 stall: Iterable[int] = (),
                 kill: Iterable[int] = (),
                 enospc: int = 0,
                 seed: int = 0):
        self.crash: FrozenSet[int] = frozenset(crash)
        self.hang: FrozenSet[int] = frozenset(hang)
        self.eof: FrozenSet[int] = frozenset(eof)
        self.garbage: FrozenSet[int] = frozenset(garbage)
        self.poison: FrozenSet[str] = frozenset(poison)
        self.torn: FrozenSet[int] = frozenset(torn)
        self.garbage_frame: FrozenSet[int] = frozenset(garbage_frame)
        self.oversize: FrozenSet[int] = frozenset(oversize)
        self.disconnect: FrozenSet[int] = frozenset(disconnect)
        self.stall: FrozenSet[int] = frozenset(stall)
        self.kill: FrozenSet[int] = frozenset(kill)
        self.seed = seed
        self._cache_flips_left = int(cache_flips)
        self._enospc_left = int(enospc)
        self._rng = random.Random(seed)

    # -- construction --------------------------------------------------------

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a ``--inject-faults`` / ``VAULTC_FAULTS`` spec string."""
        ids = {kind: set() for kind in DISPATCH_FAULT_KINDS}
        wire_ids = {kind: set() for kind in WIRE_FAULT_KINDS}
        poison: Set[str] = set()
        cache_flips = 0
        enospc = 0
        for raw in spec.split(","):
            part = raw.strip()
            if not part:
                continue
            if part.startswith("poison:"):
                qual = part[len("poison:"):]
                if not qual:
                    raise FaultError("poison: needs a function name")
                poison.add(qual)
                continue
            if part.startswith("seed="):
                try:
                    seed = int(part[len("seed="):])
                except ValueError:
                    raise FaultError(f"bad seed in {part!r}") from None
                continue
            if part == "flip-cache":
                cache_flips += 1
                continue
            if part.startswith("flip-cache@"):
                try:
                    cache_flips += int(part[len("flip-cache@"):])
                except ValueError:
                    raise FaultError(f"bad flip count in {part!r}") from None
                continue
            if part == "enospc":
                enospc += 1
                continue
            if part.startswith("enospc@"):
                try:
                    enospc += int(part[len("enospc@"):])
                except ValueError:
                    raise FaultError(
                        f"bad enospc count in {part!r}") from None
                continue
            kind, at, where = part.partition("@")
            if kind in DISPATCH_FAULT_KINDS:
                ids[kind].update(_parse_ids(where) if at else {0})
            elif kind in WIRE_FAULT_KINDS:
                wire_ids[kind].update(_parse_ids(where) if at else {0})
            else:
                raise FaultError(
                    f"unknown fault {part!r} (kinds: "
                    f"{', '.join(DISPATCH_FAULT_KINDS)}, "
                    f"{', '.join(WIRE_FAULT_KINDS)}, poison:QUAL, "
                    f"flip-cache, enospc, seed=N)")
        return cls(crash=ids["crash"], hang=ids["hang"], eof=ids["eof"],
                   garbage=ids["garbage"], poison=poison,
                   cache_flips=cache_flips,
                   torn=wire_ids["torn"],
                   garbage_frame=wire_ids["garbage-frame"],
                   oversize=wire_ids["oversize"],
                   disconnect=wire_ids["disconnect"],
                   stall=wire_ids["stall"],
                   kill=wire_ids["kill"],
                   enospc=enospc, seed=seed)

    # -- worker-side triggers ------------------------------------------------

    def dispatch_fault(self, dispatch_id: int) -> Optional[str]:
        """The fault (if any) a worker should act out for this dispatch."""
        for kind in DISPATCH_FAULT_KINDS:
            if dispatch_id in getattr(self, kind):
                return kind
        return None

    def poisoned(self, qual: str) -> bool:
        """Does checking ``qual`` in a worker hard-crash it (every time)?"""
        return qual in self.poison

    # -- wire-side triggers --------------------------------------------------

    def wire_fault(self, request_id: int) -> Optional[str]:
        """The socket-level fault (if any) to act out for the
        ``request_id``-th relayed daemon request."""
        for kind in WIRE_FAULT_KINDS:
            if request_id in getattr(self, _WIRE_ATTRS[kind]):
                return kind
        return None

    # -- parent-side triggers ------------------------------------------------

    def take_cache_flip(self) -> bool:
        """Consume one ``flip-cache`` budget unit (parent-side only)."""
        if self._cache_flips_left <= 0:
            return False
        self._cache_flips_left -= 1
        return True

    def take_enospc(self) -> bool:
        """Consume one ``enospc`` budget unit: the shared CAS fails its
        next object write with ``OSError(ENOSPC)``."""
        if self._enospc_left <= 0:
            return False
        self._enospc_left -= 1
        return True

    def flip_file_byte(self, path: str) -> int:
        """Flip one bit of one seeded byte of ``path``; returns the
        offset (deterministic for a given plan seed and call order)."""
        with open(path, "r+b") as handle:
            data = handle.read()
            if not data:
                return -1
            offset = self._rng.randrange(len(data))
            handle.seek(offset)
            handle.write(bytes([data[offset] ^ 0x40]))
        return offset

    # -- introspection -------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self.crash or self.hang or self.eof or self.garbage
                    or self.poison or self._cache_flips_left
                    or self.torn or self.garbage_frame or self.oversize
                    or self.disconnect or self.stall or self.kill
                    or self._enospc_left)

    def describe(self) -> str:
        parts = []
        for kind in DISPATCH_FAULT_KINDS:
            for did in sorted(getattr(self, kind)):
                parts.append(f"{kind}@{did}")
        for kind in WIRE_FAULT_KINDS:
            for rid in sorted(getattr(self, _WIRE_ATTRS[kind])):
                parts.append(f"{kind}@{rid}")
        parts.extend(f"poison:{qual}" for qual in sorted(self.poison))
        if self._cache_flips_left:
            parts.append(f"flip-cache@{self._cache_flips_left}")
        if self._enospc_left:
            parts.append(f"enospc@{self._enospc_left}")
        parts.append(f"seed={self.seed}")
        return ",".join(parts)

    def __repr__(self) -> str:
        return f"FaultPlan({self.describe()})"
