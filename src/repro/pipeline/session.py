"""The checking pipeline: incremental, cacheable, parallel.

A :class:`CheckSession` answers repeated ``check(source)`` calls the
way ``repro.check_source`` does, but re-does only the work an edit
invalidated:

* **chunked parsing** — the unit is split into top-level declaration
  chunks (:mod:`repro.pipeline.chunks`); each chunk's AST is cached by
  content hash and position, so editing one function re-parses one
  declaration, not the file;
* **context cache** — the elaborated :class:`ProgramContext` is cached
  by the tuple of chunk hashes (layered on the process-wide stdlib
  base context);
* **summary cache** — per-function diagnostics are cached under a
  stable content fingerprint of the function and everything it
  references (:mod:`repro.pipeline.fingerprint`), optionally persisted
  to disk;
* **parallel checking** — with ``jobs > 1``, uncached functions are
  packed into cost-balanced batches (:mod:`repro.pipeline.scheduler`)
  and flow-checked by a persistent fork-server worker pool
  (:mod:`repro.pipeline.workers`); results are merged in source
  (sorted qualified name) order, so the diagnostic stream is
  byte-identical to serial mode.  Below the scheduler's break-even
  point the session checks serially — ``jobs > 1`` is never slower
  than serial on small workloads;
* **shared store** — with ``shared_store=`` (a
  :class:`repro.cache.SharedStore`), summary misses batch-fetch from
  the cross-session tiers before being checked, freshly checked
  summaries are written back, and whole units replay from stored
  diagnostic streams — a *second cold session* on identical code runs
  at warm speed (see :mod:`repro.cache`).

Determinism guarantee: for any ``source``, the reporter returned by
``check`` contains the same diagnostics in the same order as
``repro.check_source(source)``, regardless of cache state or worker
count — and regardless of recoverable worker failures: the supervised
pool (:mod:`repro.pipeline.workers`) respawns crashed workers and
retries/bisects their batches, and when the pool is beyond saving the
serial fallback reuses every batch result that did complete instead of
re-checking the whole unit.  On-disk summary caches are written
atomically with a content checksum; a corrupt file is quarantined
(``summaries.pkl.corrupt.<pid>.<seq>`` — unique names with bounded
retention, so repeated corruption keeps the newest post-mortems) with
a structured ``cache_corrupt`` event and the session continues cold.
See docs/CHECKER.md ("Failure modes and recovery").
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core import build_context, check_function_diagnostics
from ..core.checker import MAX_LOOP_ITERATIONS
from ..diagnostics import Diagnostic, Reporter, VaultError
from ..obs import Telemetry
from ..obs.trace import activate as activate_tracer
from ..stdlib import stdlib_context, stdlib_source
from ..stdlib.loader import base_context_cache_info
from ..syntax import ast, parse_program, tokenize
from ..syntax.intern import AST_POOL
from ..syntax.relex import relex
from ..syntax.tokens import T, Token
from .chunks import Chunk, ChunkError, split_chunks
from .faults import FaultPlan
from .fingerprint import cache_checksum, function_fingerprint
from .scheduler import (BREAK_EVEN_SECONDS, DEFAULT_BATCH_TIMEOUT,
                        available_cpus, plan as plan_batches, resolve_jobs)
from .workers import WorkerCrash, WorkerPool, fork_available

#: caps on the in-memory caches; on overflow the oldest half is evicted.
_MAX_CONTEXTS = 64
_MAX_CHUNK_ASTS = 8192
#: per-chunk token streams (and their interface digests) kept beside
#: the chunk-AST cache; streams are bigger than ASTs per entry, so the
#: cap is lower.
_MAX_TOKEN_STREAMS = 4096
#: summary/cost caches are bounded too — a session embedded in a
#: long-running daemon sees an unbounded stream of distinct sources,
#: and before these caps its summary and cost maps grew forever.
_MAX_SUMMARIES = 32768
_MAX_COSTS = 32768
#: unit-record keys this session already stored to / replayed from the
#: shared store — a warm re-check of the same source skips the shared
#: fetch (L1 serves it) instead of paying a tier round trip per check.
_MAX_SEEN_UNITS = 4096

#: quarantined ``summaries.pkl.corrupt.*`` files kept for post-mortems
#: (newest first; older ones are collected at the next quarantine).
_QUARANTINE_KEEP = 8

#: per-process quarantine sequence — combined with the pid it makes
#: every quarantine file name unique, so a second corruption can never
#: clobber the first post-mortem.
_quarantine_seq = 0

#: version 3 wraps the summaries/costs body in a checksummed envelope
#: (see ``_save_cache``) so on-disk corruption is detected and
#: quarantined instead of silently swallowed; version-1/2 payloads
#: still load (v1: summaries only, costs start empty).
_PICKLE_VERSION = 3

#: pickle-level exceptions a hostile/corrupt cache file can raise.
_CACHE_LOAD_ERRORS = (OSError, pickle.PickleError, EOFError, KeyError,
                      AttributeError, ImportError, TypeError, ValueError,
                      IndexError)


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class SessionStats:
    """Counters exposed for tests and benchmarks.

    ``last_checked``/``last_replayed`` list the qualified names that
    were flow-analysed vs. served from the summary cache by the most
    recent ``check`` call.
    """

    def __init__(self) -> None:
        self.checks = 0
        self.context_hits = 0
        self.context_misses = 0
        self.chunk_parses = 0
        self.chunk_hits = 0
        self.whole_parses = 0
        self.functions_checked = 0
        self.functions_replayed = 0
        self.parallel_runs = 0
        self.serial_fallbacks = 0
        self.pool_spawns = 0
        # front-end cache counters (mirrored by ``cache.tokens.*`` /
        # ``relex.*`` metrics when the registry is enabled)
        self.token_hits = 0
        self.token_misses = 0
        self.relex_splices = 0
        self.relex_fallbacks = 0
        self.fingerprints_memoized = 0
        # resilience counters (mirrored by the ``resilience.*``
        # metrics when the registry is enabled)
        self.respawns = 0
        self.retries = 0
        self.bisections = 0
        self.timeouts = 0
        self.poisoned = 0
        self.cache_quarantines = 0
        self.fallback_reused = 0
        # shared-store counters (mirrored by the ``cache.shared.unit.*``
        # / ``cache.shared.summary.*`` metrics when the registry is
        # enabled; per-tier traffic lives on the store itself)
        self.shared_unit_hits = 0
        self.shared_unit_misses = 0
        self.shared_summary_hits = 0
        self.shared_summary_misses = 0
        self.shared_puts = 0
        self.last_checked: List[str] = []
        self.last_replayed: List[str] = []

    def __repr__(self) -> str:
        return (f"SessionStats(checks={self.checks}, "
                f"ctx={self.context_hits}h/{self.context_misses}m, "
                f"chunks={self.chunk_hits}h/{self.chunk_parses}m, "
                f"functions={self.functions_replayed} replayed/"
                f"{self.functions_checked} checked)")


class _Summary:
    """Cached diagnostics for one function fingerprint.

    A clean result (no diagnostics) replays at any position.  A dirty
    result carries spans, so it replays only for a definition at the
    same place in the same file; anywhere else the function is simply
    re-checked (a cache miss, never a wrong answer).
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        # (filename, start_line) -> tuple of diagnostics; clean results
        # are stored under the wildcard key None.
        self.entries: Dict[Optional[Tuple[str, int]],
                           Tuple[Diagnostic, ...]] = {}

    def lookup(self, filename: str, line: int
               ) -> Optional[Tuple[Diagnostic, ...]]:
        if None in self.entries:
            return self.entries[None]
        return self.entries.get((filename, line))

    def store(self, filename: str, line: int,
              diags: Tuple[Diagnostic, ...]) -> None:
        if not diags:
            self.entries.clear()
            self.entries[None] = ()
        else:
            self.entries[(filename, line)] = diags


class _CtxEntry:
    __slots__ = ("ctx", "diags", "fn_results", "env_token")

    def __init__(self, ctx, diags: Tuple[Diagnostic, ...],
                 env_token: str = ""):
        self.ctx = ctx
        self.diags = diags
        #: per-function diagnostics in merge order, filled in by the
        #: first check against this context — a later check of the
        #: byte-identical source replays without touching fingerprints.
        self.fn_results: Optional[List[Tuple[str, Tuple[Diagnostic, ...]]]] \
            = None
        #: digest of every chunk's *interface* (signatures and
        #: declarations, not function bodies) plus the session's
        #: stdlib/units configuration.  A function fingerprint computed
        #: under one env token is valid under any context with the same
        #: token, so fingerprints are memoized on the (cached) FunDef
        #: nodes keyed by it — a body edit in one chunk leaves the
        #: token unchanged and skips re-fingerprinting every other
        #: function in the unit.
        self.env_token = env_token


class CheckSession:
    """A long-lived checking pipeline with summary caching.

    Equivalent to calling :func:`repro.check_source` for every
    ``check``, but incremental across calls.  ``jobs`` > 1 enables the
    fork-based process pool (where the platform supports it);
    ``cache_dir`` persists function summaries across processes.
    """

    def __init__(self, stdlib: bool = True,
                 units: Optional[Sequence[str]] = None,
                 jobs: Union[int, str] = 1,
                 cache_dir: Optional[str] = None,
                 join_abstraction: bool = True,
                 max_loop_iterations: int = MAX_LOOP_ITERATIONS,
                 break_even_seconds: float = BREAK_EVEN_SECONDS,
                 telemetry: Optional[Telemetry] = None,
                 batch_timeout: float = DEFAULT_BATCH_TIMEOUT,
                 fault_plan: Optional[FaultPlan] = None,
                 shared_store=None):
        self.stdlib = stdlib
        self.units = tuple(units) if units is not None else None
        self.jobs = self._resolve_jobs(jobs)
        self.cache_dir = cache_dir
        self.join_abstraction = join_abstraction
        self.max_loop_iterations = max_loop_iterations
        self.break_even_seconds = break_even_seconds
        #: floor (seconds) under the per-batch watchdog deadline.
        self.batch_timeout = batch_timeout
        #: deterministic chaos schedule (tests/CI only; ``None`` in
        #: normal operation).
        self.fault_plan = fault_plan
        #: cross-session result store (:class:`repro.cache.SharedStore`)
        #: or ``None``.  The session never closes it — the owner (CLI,
        #: daemon, test) controls its lifetime.  Chaos sessions must
        #: not publish their (deliberately poisoned) results, so a
        #: fault plan disables the store.
        self.shared_store = shared_store if fault_plan is None else None
        self._shared_salt = ""
        self._seen_units: Dict[str, bool] = {}
        if self.shared_store is not None:
            from ..cache.store import options_salt
            self._shared_salt = options_salt(
                self.stdlib, self.units, join_abstraction,
                max_loop_iterations)
        self.stats = SessionStats()
        #: the session's observability bundle; ``Telemetry()`` (the
        #: default) records nothing beyond rare events — pass
        #: ``Telemetry(trace=True, metrics=True)`` to instrument.
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.telemetry.stats = self.stats
        self._ast_cache: Dict[Tuple[str, int, int], ast.Program] = {}
        #: per-chunk token streams, keyed like the chunk-AST cache;
        #: each entry keeps the chunk text (the relexer diffs against
        #: it) and the lexed stream.
        self._token_cache: Dict[Tuple[str, int, int],
                                Tuple[str, List[Token]]] = {}
        #: per-chunk interface digests (see ``_interface_part``).
        self._iface_cache: Dict[Tuple[str, int, int], str] = {}
        #: chunk keys of the previous check per filename — the
        #: relexer's candidates for "the same declaration, edited".
        self._chunk_history: Dict[str, List[Tuple[str, int, int]]] = {}
        self._ctx_cache: Dict[tuple, _CtxEntry] = {}
        self._summaries: Dict[str, _Summary] = {}
        self._cost_by_qual: Dict[str, float] = {}
        self._stdlib_lines: Dict[str, List[str]] = {}
        self._pool: Optional[WorkerPool] = None
        #: set when the in-memory summaries/costs diverge from the
        #: on-disk cache; a check that replayed everything does not
        #: rewrite the (potentially large) pickle.
        self._cache_dirty = False
        if cache_dir:
            # Pre-register so a healthy run reports an explicit zero
            # (its pool-side siblings are registered at pool creation).
            if self.telemetry.metrics.enabled:
                self.telemetry.metrics.counter(
                    "resilience.cache_quarantines")
            self._load_cache()

    @staticmethod
    def _resolve_jobs(jobs: Union[int, str]) -> int:
        if isinstance(jobs, str):
            return resolve_jobs(jobs)
        return max(1, int(jobs))

    @property
    def last_profile(self) -> Dict[str, object]:
        """Phase timings and the scheduler's verdict for the most
        recent ``check`` call (compatibility shim; the data lives on
        :attr:`telemetry`)."""
        return self.telemetry.profile

    # -- public API --------------------------------------------------------

    def check(self, source: str, filename: str = "<input>",
              jobs: Optional[Union[int, str]] = None) -> Reporter:
        """Parse, elaborate and protocol-check one compilation unit."""
        self.stats.last_checked = []
        self.stats.last_replayed = []
        self.stats.checks += 1
        self.telemetry.profile = {}
        profile = self.telemetry.profile
        started = time.perf_counter()
        tracer = self.telemetry.tracer
        try:
            with activate_tracer(tracer), \
                    tracer.span("check_unit", filename=filename):
                return self._check_inner(source, filename, jobs, profile,
                                         started)
        except BaseException as exc:
            # A crash mid-check must not masquerade as a clean (empty)
            # profile: mark it, so post-hoc consumers can tell a
            # partial record from a fast one.
            profile["aborted"] = True
            profile["error"] = f"{type(exc).__name__}: {exc}"
            self.telemetry.events.emit(
                "check_aborted", f"check of {filename} raised: {exc}",
                filename=filename, error=profile["error"])
            raise
        finally:
            profile["total_seconds"] = time.perf_counter() - started

    def _check_inner(self, source: str, filename: str,
                     jobs: Optional[Union[int, str]],
                     profile: Dict[str, object],
                     started: float) -> Reporter:
        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics
        reporter = Reporter(source, filename)
        # Shared-store unit replay: a stored record carries the unit's
        # complete diagnostic stream (stdlib + context + per-function,
        # already merged in serial order), so a hit skips parsing and
        # elaboration entirely.  Keys this session has already stored
        # or replayed skip the fetch — the in-process caches serve
        # them without a tier round trip.
        store_unit_key: Optional[str] = None
        if self.shared_store is not None:
            from ..cache.store import unit_store_key
            ukey = unit_store_key(source, filename, self._shared_salt)
            if ukey not in self._seen_units:
                store_unit_key = ukey
                record = self._shared_fetch_unit(ukey)
                if record is not None:
                    reporter.diagnostics.extend(record["diags"])
                    self._mark_unit_seen(ukey)
                    self.stats.shared_unit_hits += 1
                    self.stats.functions_replayed += record["functions"]
                    if metrics.enabled:
                        metrics.counter("cache.shared.unit.hits").inc()
                    profile["plan"] = "replayed whole unit (shared store)"
                    return self._finish(reporter)
                self.stats.shared_unit_misses += 1
                if metrics.enabled:
                    metrics.counter("cache.shared.unit.misses").inc()
        base = None
        if self.stdlib:
            with tracer.span("stdlib_base"):
                builds_before = base_context_cache_info().misses
                base, base_diags = stdlib_context(self.units)
            if metrics.enabled:
                if base_context_cache_info().misses == builds_before:
                    metrics.counter("cache.stdlib_base.hits").inc()
                else:
                    metrics.counter("cache.stdlib_base.misses").inc()
            reporter.diagnostics.extend(base_diags)
        entry = self._context_for(source, filename, base)
        profile["context_seconds"] = time.perf_counter() - started
        reporter.diagnostics.extend(entry.diags)
        if not reporter.ok:
            self._shared_store_unit(store_unit_key, reporter, 0)
            return self._finish(reporter)
        if entry.fn_results is not None:
            for qual, diags in entry.fn_results:
                reporter.diagnostics.extend(diags)
            self.stats.last_replayed = [q for q, _ in entry.fn_results]
            self.stats.functions_replayed += len(entry.fn_results)
            if metrics.enabled:
                metrics.counter("cache.unit_replay.hits").inc(
                    len(entry.fn_results))
            profile["plan"] = "replayed whole unit"
            self._shared_store_unit(store_unit_key, reporter,
                                    len(entry.fn_results))
            return self._finish(reporter)
        check_started = time.perf_counter()
        with tracer.span("check_functions"):
            results = self._check_functions(
                entry.ctx, source, filename,
                self.jobs if jobs is None else self._resolve_jobs(jobs),
                entry.env_token)
        profile["check_seconds"] = time.perf_counter() - check_started
        entry.fn_results = results
        for qual, diags in results:
            reporter.diagnostics.extend(diags)
        if self.cache_dir and self._cache_dirty:
            self._save_cache()
            self._cache_dirty = False
        self._shared_store_unit(store_unit_key, reporter, len(results))
        return self._finish(reporter)

    def _finish(self, reporter: Reporter) -> Reporter:
        metrics = self.telemetry.metrics
        if metrics.enabled:
            for diag in reporter.diagnostics:
                metrics.counter(
                    f"diagnostics.{diag.code.value}").inc()
        return reporter

    def render_check(self, source: str, filename: str = "<input>",
                     jobs: Optional[Union[int, str]] = None) -> str:
        """The rendered report for ``source`` (the CLI's output)."""
        return self.check(source, filename, jobs=jobs).render()

    def close(self) -> None:
        """Shut down the worker pool (the session stays usable; a
        later parallel check simply spawns a fresh pool)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    @property
    def pool_alive(self) -> bool:
        """Whether a forked worker pool is currently resident."""
        return self._pool is not None

    def reap_idle_pool(self, max_idle_seconds: float) -> bool:
        """Tear down the worker pool if it has sat unused for
        ``max_idle_seconds`` (daemon hygiene: warm caches are cheap to
        keep, idle forked processes are not).  Returns True when a
        pool was reaped; the session stays fully usable."""
        if self._pool is not None \
                and self._pool.idle_seconds() >= max_idle_seconds:
            self.close()
            return True
        return False

    def __enter__(self) -> "CheckSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- context construction ----------------------------------------------

    def _context_for(self, source: str, filename: str, base) -> _CtxEntry:
        metrics = self.telemetry.metrics
        with self.telemetry.tracer.span("split_chunks"):
            try:
                chunks = split_chunks(source)
            except ChunkError:
                chunks = None
        if chunks:
            chunk_keys = [(_sha(c.text), c.start_line, c.start_col)
                          for c in chunks]
            key: tuple = (filename, self.units, self.stdlib,
                          tuple(chunk_keys))
            prev_keys = self._chunk_history.get(filename)
            self._chunk_history[filename] = chunk_keys
        else:
            chunk_keys = []
            key = (filename, self.units, self.stdlib, _sha(source))
            prev_keys = None
            self._chunk_history.pop(filename, None)
        entry = self._ctx_cache.get(key)
        if entry is not None:
            self.stats.context_hits += 1
            if metrics.enabled:
                metrics.counter("cache.context.hits").inc()
            return entry
        self.stats.context_misses += 1
        if metrics.enabled:
            metrics.counter("cache.context.misses").inc()
        programs, env_token = self._parse(source, filename, chunks,
                                          chunk_keys, prev_keys)
        sub = Reporter()
        with self.telemetry.tracer.span("elaborate"):
            ctx = build_context(programs, sub, base=base)
        entry = _CtxEntry(ctx, tuple(sub.diagnostics), env_token)
        if len(self._ctx_cache) >= _MAX_CONTEXTS:
            self._evict_traced(self._ctx_cache, "context")
        self._ctx_cache[key] = entry
        return entry

    def _parse(self, source: str, filename: str,
               chunks: Optional[List[Chunk]],
               chunk_keys: List[Tuple[str, int, int]],
               prev_keys: Optional[List[Tuple[str, int, int]]]
               ) -> Tuple[List[ast.Program], str]:
        metrics = self.telemetry.metrics
        tracer = self.telemetry.tracer
        if not chunks:
            self.stats.whole_parses += 1
            return [parse_program(source, filename)], \
                self._unit_env_token(source, filename)
        programs: List[ast.Program] = []
        iface_parts: List[str] = []
        pool_hits, pool_misses = AST_POOL.hits, AST_POOL.misses
        try:
            for idx, chunk in enumerate(chunks):
                ckey = chunk_keys[idx]
                with tracer.span("token_cache"):
                    cached = self._token_cache.get(ckey)
                tokens: Optional[List[Token]] = None
                if cached is not None:
                    tokens = cached[1]
                    self.stats.token_hits += 1
                    if metrics.enabled:
                        metrics.counter("cache.tokens.hits").inc()
                prog = self._ast_cache.get(ckey)
                if prog is None:
                    if tokens is None:
                        self.stats.token_misses += 1
                        if metrics.enabled:
                            metrics.counter("cache.tokens.misses").inc()
                        tokens = self._lex_chunk(chunk, ckey, filename,
                                                 prev_keys, idx)
                    prog = parse_program(chunk.text, filename,
                                         first_line=chunk.start_line,
                                         first_col=chunk.start_col,
                                         tokens=tokens)
                    self.stats.chunk_parses += 1
                    if metrics.enabled:
                        metrics.counter("cache.chunk_ast.misses").inc()
                    if len(self._ast_cache) >= _MAX_CHUNK_ASTS:
                        self._evict_traced(self._ast_cache, "chunk_ast")
                    self._ast_cache[ckey] = prog
                else:
                    self.stats.chunk_hits += 1
                    if metrics.enabled:
                        metrics.counter("cache.chunk_ast.hits").inc()
                iface_parts.append(self._interface_part(ckey, tokens))
                programs.append(prog)
        except VaultError:
            # A chunk the scanner mis-split (or a genuine syntax
            # error): parse the whole unit so errors are reported
            # exactly as the non-incremental path reports them.
            self.stats.whole_parses += 1
            return [parse_program(source, filename)], \
                self._unit_env_token(source, filename)
        if metrics.enabled:
            delta_hits = AST_POOL.hits - pool_hits
            delta_misses = AST_POOL.misses - pool_misses
            if delta_hits:
                metrics.counter("cache.ast_pool.hits").inc(delta_hits)
            if delta_misses:
                metrics.counter("cache.ast_pool.misses").inc(delta_misses)
        env_token = _sha("\x00".join(iface_parts)
                         + f"\x00{filename}\x00{self.units!r}"
                           f"\x00{self.stdlib!r}")
        return programs, env_token

    def _lex_chunk(self, chunk: Chunk, ckey: Tuple[str, int, int],
                   filename: str,
                   prev_keys: Optional[List[Tuple[str, int, int]]],
                   idx: int) -> List[Token]:
        """Token stream for one chunk: an incremental splice against
        the previous check's chunk at the same slot when possible, a
        full lex otherwise.  Either way the stream is cached."""
        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics
        tokens: Optional[List[Token]] = None
        if prev_keys is not None and idx < len(prev_keys):
            pkey = prev_keys[idx]
            # Same slot, same position, different text: the shape of a
            # sub-chunk edit.  A chunk that also moved (an edit above
            # it changed line numbers) falls back to a full lex — the
            # splice only rebases spans within the chunk.
            if pkey != ckey and pkey[1] == chunk.start_line \
                    and pkey[2] == chunk.start_col:
                prev = self._token_cache.get(pkey)
                if prev is not None:
                    with tracer.span("relex"):
                        spliced = relex(prev[0], prev[1], chunk.text,
                                        filename, chunk.start_line,
                                        chunk.start_col)
                    if spliced is not None:
                        tokens = spliced.tokens
                        self.stats.relex_splices += 1
                        if metrics.enabled:
                            metrics.counter("relex.splices").inc()
                            metrics.counter("relex.tokens_reused").inc(
                                spliced.reused)
                            metrics.counter("relex.tokens_fresh").inc(
                                spliced.fresh)
                    else:
                        self.stats.relex_fallbacks += 1
                        if metrics.enabled:
                            metrics.counter("relex.fallbacks").inc()
        if tokens is None:
            with tracer.span("lex", filename=filename):
                tokens = tokenize(chunk.text, filename,
                                  chunk.start_line, chunk.start_col)
        if len(self._token_cache) >= _MAX_TOKEN_STREAMS:
            self._evict_traced(self._token_cache, "tokens")
        self._token_cache[ckey] = (chunk.text, tokens)
        return tokens

    #: first-token kinds of chunks whose whole text is their interface
    #: (type/variant/struct/stateset/key declarations, interfaces and
    #: modules — anything that can contribute more than one signature
    #: to the context).
    _DECL_CHUNK_KINDS = frozenset({
        T.KW_INTERFACE, T.KW_MODULE, T.KW_EXTERN, T.KW_TYPE, T.KW_VARIANT,
        T.KW_STRUCT, T.KW_STATESET, T.KW_KEY,
    })

    def _interface_part(self, ckey: Tuple[str, int, int],
                        tokens: Optional[List[Token]]) -> str:
        """One chunk's contribution to the context-wide env token.

        For a function-definition chunk only the header (tokens up to
        the body's opening brace — return type, name, parameters,
        effect clause) feeds the digest: body edits must not disturb
        the env token, that is the whole point of the memo.  Any chunk
        led by a declaration keyword digests its full text —
        conservative, but those chunks can define types, keys or whole
        modules whose every detail other fingerprints may see.  With no
        token stream at hand (chunk-AST hit after token-cache
        eviction) the content hash stands in, which can only make the
        token *more* conservative.
        """
        part = self._iface_cache.get(ckey)
        if part is not None:
            return part
        if tokens is None:
            return ckey[0]          # content hash: always conservative
        if tokens and tokens[0].kind in self._DECL_CHUNK_KINDS:
            part = ckey[0]
        else:
            header: List[str] = []
            for tok in tokens:
                if tok.kind is T.LBRACE:
                    break
                header.append(tok.text)
            part = "\x1f".join(header)
        if len(self._iface_cache) >= _MAX_TOKEN_STREAMS:
            self._evict_traced(self._iface_cache, "iface")
        self._iface_cache[ckey] = part
        return part

    def _unit_env_token(self, source: str, filename: str) -> str:
        """Env token for the whole-unit (non-chunked) parse path."""
        return _sha(f"unit\x00{_sha(source)}\x00{filename}"
                    f"\x00{self.units!r}\x00{self.stdlib!r}")

    @staticmethod
    def _evict(cache: dict) -> None:
        for key in list(cache)[:len(cache) // 2 + 1]:
            del cache[key]

    def _evict_traced(self, cache: dict, layer: str) -> None:
        """Evict the oldest half of ``cache``, leaving a trace: a
        ``cache.<layer>.evictions`` counter and a ``cache_evict``
        event.  Before this, the summary/cost caps silently threw away
        warm state — a daemon serving an eviction-heavy workload
        looked identical to one with a healthy cache."""
        before = len(cache)
        self._evict(cache)
        evicted = before - len(cache)
        if self.telemetry.metrics.enabled:
            self.telemetry.metrics.counter(
                f"cache.{layer}.evictions").inc(evicted)
        self.telemetry.events.emit(
            "cache_evict",
            f"evicted {evicted} of {before} entries from the "
            f"{layer} cache (cap reached)",
            layer=layer, evicted=evicted, remaining=len(cache))

    # -- function checking -------------------------------------------------

    def _check_functions(self, ctx, source: str, filename: str, jobs: int,
                         env_token: str = ""
                         ) -> List[Tuple[str, Tuple[Diagnostic, ...]]]:
        """Diagnostics per function, in serial (sorted-qual) order."""
        metrics = self.telemetry.metrics
        fn_items = ctx.defined_functions()
        results: Dict[str, Tuple[Diagnostic, ...]] = {}
        to_check: List[Tuple[str, ast.FunDef, str]] = []  # qual, def, fp
        source_lines = source.splitlines()
        memoized = 0
        with self.telemetry.tracer.span("fingerprint",
                                        functions=len(fn_items)):
            for qual, fundef in fn_items:
                # A fingerprint covers the function's own text plus the
                # rendered signatures it can see; both are pinned by
                # (this FunDef object, the context's env token), so a
                # recomputation under the same pair is pure waste.  The
                # memo rides on the cached FunDef node: an edited chunk
                # parses to a fresh node and misses naturally.
                memo = fundef.__dict__.get("_pl_fp")
                if memo is not None and env_token and memo[0] == env_token:
                    fp = memo[1]
                    memoized += 1
                else:
                    fp = function_fingerprint(
                        ctx, qual, fundef,
                        self._own_text(fundef, source_lines, filename))
                    if env_token:
                        object.__setattr__(fundef, "_pl_fp",
                                           (env_token, fp))
                summary = self._summaries.get(fp)
                cached = summary.lookup(fundef.span.filename,
                                        fundef.span.start.line) \
                    if summary is not None else None
                if cached is not None:
                    results[qual] = cached
                    self.stats.last_replayed.append(qual)
                    self.stats.functions_replayed += 1
                else:
                    to_check.append((qual, fundef, fp))
        self.stats.fingerprints_memoized += memoized
        if metrics.enabled:
            if memoized:
                metrics.counter("cache.fingerprint_memo.hits").inc(memoized)
            misses = len(fn_items) - memoized
            if misses:
                metrics.counter("cache.fingerprint_memo.misses").inc(misses)
            replayed = len(fn_items) - len(to_check)
            if replayed:
                metrics.counter("cache.summary.hits").inc(replayed)
            if to_check:
                metrics.counter("cache.summary.misses").inc(len(to_check))
        if self.shared_store is not None and to_check:
            # L1 missed these: one batched fetch against the shared
            # tiers before paying for any flow analysis.
            to_check = self._shared_fetch_summaries(to_check, results)
        if to_check:
            checked = self._run_checks(ctx, to_check, jobs)
            for (qual, fundef, fp), diags in zip(to_check, checked):
                results[qual] = diags
                self._summaries.setdefault(fp, _Summary()).store(
                    fundef.span.filename, fundef.span.start.line, diags)
                self.stats.last_checked.append(qual)
                self.stats.functions_checked += 1
            self._cache_dirty = True
            if self.shared_store is not None:
                self._shared_put_summaries(to_check)
            if len(self._summaries) > _MAX_SUMMARIES:
                self._evict_traced(self._summaries, "summary")
            if len(self._cost_by_qual) > _MAX_COSTS:
                self._evict_traced(self._cost_by_qual, "costs")
        return [(qual, results[qual]) for qual, _ in fn_items]

    def _run_checks(self, ctx, to_check, jobs: int
                    ) -> List[Tuple[Diagnostic, ...]]:
        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics
        effective_jobs = jobs if fork_available() else 1
        if self.break_even_seconds > 0 and available_cpus() < 2:
            # Workers would time-slice a single core: parallelism can
            # only lose.  (A zero break-even forces the pool anyway —
            # the tests' escape hatch for exercising the protocol.)
            effective_jobs = 1
        with tracer.span("schedule", functions=len(to_check),
                         jobs=effective_jobs):
            sched = plan_batches([(qual, fundef) for qual, fundef, _fp in
                                  to_check],
                                 effective_jobs, self._cost_by_qual,
                                 self.break_even_seconds)
        self.last_profile["plan"] = sched.describe()
        if metrics.enabled:
            self._record_plan_metrics(sched)
        partial: Dict[str, Tuple[Tuple[Diagnostic, ...], float]] = {}
        if sched.parallel:
            try:
                return self._run_parallel(ctx, to_check, sched, jobs)
            except (WorkerCrash, OSError) as exc:
                # Even the supervised pool can be beyond saving (fork
                # failures, respawn budget exhausted).  The fallback
                # must not change the diagnostic stream — check
                # serially — but it must not vanish either (warn,
                # surface the child traceback) and it must not waste
                # the batches that *did* complete: those results ride
                # along on the exception and are reused verbatim.
                partial = dict(getattr(exc, "partial", None) or {})
                self.stats.serial_fallbacks += 1
                self.stats.fallback_reused += len(partial)
                if metrics.enabled:
                    metrics.counter("workers.serial_fallbacks").inc()
                    if partial:
                        metrics.counter(
                            "workers.fallback_reused").inc(len(partial))
                self.telemetry.events.emit(
                    "serial_fallback",
                    f"parallel checking failed ({exc}); "
                    f"falling back to serial", error=str(exc),
                    reused=len(partial),
                    rechecked=len(to_check) - len(partial))
                print(f"repro: parallel checking failed ({exc}); "
                      f"falling back to serial", file=sys.stderr)
                child_tb = getattr(exc, "child_traceback", "")
                if child_tb:
                    print(child_tb, file=sys.stderr, end="")
                self.close()
        out: List[Tuple[Diagnostic, ...]] = []
        for qual, fundef, _fp in to_check:
            reused = partial.get(qual)
            if reused is not None:
                diags, cost = reused
                self._cost_by_qual[qual] = cost
                out.append(tuple(diags))
                continue
            started = time.perf_counter()
            with tracer.span("check_function", function=qual):
                diags = tuple(check_function_diagnostics(
                    ctx, qual, fundef,
                    join_abstraction=self.join_abstraction,
                    max_loop_iterations=self.max_loop_iterations))
            cost = time.perf_counter() - started
            self._cost_by_qual[qual] = cost
            if metrics.enabled:
                metrics.histogram("check.function_seconds").observe(cost)
            out.append(diags)
        return out

    def _record_plan_metrics(self, sched) -> None:
        metrics = self.telemetry.metrics
        if sched.parallel:
            metrics.counter("scheduler.parallel_plans").inc()
            metrics.counter("scheduler.batches").inc(len(sched.batches))
            loads = sched.batch_costs
            if loads and min(loads) > 0:
                from ..obs.metrics import RATIO_BUCKETS
                metrics.histogram("scheduler.batch_skew",
                                  RATIO_BUCKETS).observe(
                    max(loads) / min(loads))
        elif "break-even" in sched.reason:
            metrics.counter("scheduler.break_even_serial").inc()
        else:
            metrics.counter("scheduler.serial_plans").inc()

    def _run_parallel(self, ctx, to_check, sched, jobs: int
                      ) -> List[Tuple[Diagnostic, ...]]:
        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics
        pool = self._pool
        if pool is None or not pool.matches(ctx, len(sched.batches),
                                            self.join_abstraction,
                                            self.max_loop_iterations):
            if pool is not None:
                pool.close()
            # Spawn the full requested width even when this plan has
            # fewer batches: the pool persists, and a later (larger)
            # check against the same context reuses it as-is.
            with tracer.span("pool_spawn", jobs=jobs):
                pool = WorkerPool(ctx, jobs, self.join_abstraction,
                                  self.max_loop_iterations,
                                  telemetry=self.telemetry,
                                  fault_plan=self.fault_plan,
                                  batch_timeout=self.batch_timeout)
            self._pool = pool
            self.stats.pool_spawns += 1
            if metrics.enabled:
                metrics.counter("workers.pool_spawns").inc()
        batches = [[to_check[i][0] for i in batch]
                   for batch in sched.batches]
        with tracer.span("pool_round_trip", batches=len(batches)):
            result_map = pool.check_batches(batches, sched.batch_costs)
        if len(result_map) != len(to_check):
            raise WorkerCrash(
                f"workers returned {len(result_map)} results "
                f"for {len(to_check)} functions", partial=result_map)
        self.stats.parallel_runs += 1
        out: List[Tuple[Diagnostic, ...]] = []
        for qual, _fundef, _fp in to_check:
            diags, cost = result_map[qual]
            self._cost_by_qual[qual] = cost
            if metrics.enabled:
                metrics.histogram("check.function_seconds").observe(cost)
            out.append(diags)
        return out

    def _own_text(self, fundef: ast.FunDef, source_lines: List[str],
                  filename: str) -> str:
        """The exact source text of one definition (position-free)."""
        span = fundef.span
        if span.filename == filename:
            lines = source_lines
        elif span.filename.startswith("<stdlib:"):
            unit = span.filename[len("<stdlib:"):-1]
            lines = self._stdlib_lines.get(unit)
            if lines is None:
                lines = stdlib_source(unit).splitlines()
                self._stdlib_lines[unit] = lines
        else:
            return ""
        return "\n".join(lines[span.start.line - 1:span.end.line])

    # -- shared store ------------------------------------------------------

    def _mark_unit_seen(self, ukey: str) -> None:
        if len(self._seen_units) >= _MAX_SEEN_UNITS:
            self._seen_units.clear()
        self._seen_units[ukey] = True

    def _shared_fetch_unit(self, ukey: str) -> Optional[Dict[str, object]]:
        """One stored unit record, shape-validated, or ``None``."""
        with self.telemetry.tracer.span("shared_fetch_unit"):
            record = self.shared_store.fetch([ukey]).get(ukey)
        if not isinstance(record, dict):
            return None
        if not isinstance(record.get("diags"), tuple) \
                or not isinstance(record.get("functions"), int):
            return None
        return record

    def _shared_store_unit(self, ukey: Optional[str], reporter: Reporter,
                           functions: int) -> None:
        """Publish one finished unit's diagnostic stream."""
        if ukey is None or self.shared_store is None:
            return
        record = {"diags": tuple(reporter.diagnostics),
                  "functions": functions}
        with self.telemetry.tracer.span("shared_put_unit"):
            self.stats.shared_puts += self.shared_store.store({ukey: record})
        self._mark_unit_seen(ukey)

    def _shared_fetch_summaries(self, to_check, results
                                ) -> List[Tuple[str, ast.FunDef, str]]:
        """Batch-fetch L1 summary misses from the shared store; merge
        hits into the in-process summary map and return the functions
        the store could not serve either."""
        from ..cache.store import summary_store_key
        metrics = self.telemetry.metrics
        key_of = {fp: summary_store_key(fp, self._shared_salt)
                  for _qual, _fundef, fp in to_check}
        with self.telemetry.tracer.span("shared_fetch_summaries",
                                        keys=len(key_of)):
            fetched = self.shared_store.fetch(list(key_of.values()))
        still: List[Tuple[str, ast.FunDef, str]] = []
        hits = 0
        for qual, fundef, fp in to_check:
            entries = fetched.get(key_of[fp])
            diags = None
            if isinstance(entries, dict):
                # Union-merge: entries are keyed by (filename, line)
                # position (or the clean wildcard None), and identical
                # fingerprint + options imply identical diagnostics,
                # so keeping whichever side already has a position is
                # always sound.
                summary = self._summaries.setdefault(fp, _Summary())
                for pos, stored in entries.items():
                    if isinstance(stored, tuple) and (
                            pos is None or (isinstance(pos, tuple)
                                            and len(pos) == 2)):
                        summary.entries.setdefault(pos, stored)
                diags = summary.lookup(fundef.span.filename,
                                       fundef.span.start.line)
            if diags is not None:
                results[qual] = diags
                self.stats.last_replayed.append(qual)
                self.stats.functions_replayed += 1
                hits += 1
                self._cache_dirty = True
            else:
                still.append((qual, fundef, fp))
        self.stats.shared_summary_hits += hits
        self.stats.shared_summary_misses += len(still)
        if metrics.enabled:
            if hits:
                metrics.counter("cache.shared.summary.hits").inc(hits)
            if still:
                metrics.counter("cache.shared.summary.misses").inc(
                    len(still))
        return still

    def _shared_put_summaries(self, checked) -> None:
        """Write freshly computed summaries back to the shared tiers
        (merged with anything the fetch brought in)."""
        from ..cache.store import summary_store_key
        payload: Dict[str, object] = {}
        for _qual, _fundef, fp in checked:
            summary = self._summaries.get(fp)
            if summary is not None:
                payload[summary_store_key(fp, self._shared_salt)] = \
                    dict(summary.entries)
        if payload:
            with self.telemetry.tracer.span("shared_put_summaries",
                                            keys=len(payload)):
                self.stats.shared_puts += self.shared_store.store(payload)

    # -- persistence -------------------------------------------------------

    def _cache_path(self) -> str:
        return os.path.join(self.cache_dir, "summaries.pkl")

    def _load_cache(self) -> None:
        """Load the on-disk summary cache, degrading loudly.

        A missing file is a cold cache (no event).  Anything that
        fails to parse or checksum is **quarantined**: moved aside to
        ``summaries.pkl.corrupt`` (preserved for post-mortems), a
        structured ``cache_corrupt`` event is emitted with the
        exception and path, and the session continues cold.  A
        recognized-but-unsupported version is left in place but still
        reported (``cache_incompatible``) — no failure mode is a
        silent ``return`` anymore.
        """
        path = self._cache_path()
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return                                 # cold cache: normal
        except _CACHE_LOAD_ERRORS as exc:
            self._quarantine_cache(path, exc)
            return
        # Decode into fresh dicts and commit only on full success, so
        # a half-corrupt payload cannot leave the session with partial
        # (and potentially inconsistent) cache state.
        try:
            version = payload.get("version")
            if version == _PICKLE_VERSION:
                body_bytes = payload["data"]
                if cache_checksum(body_bytes) != payload["sha256"]:
                    raise ValueError(
                        "cache checksum mismatch (torn write or bit rot)")
                body = pickle.loads(body_bytes)
            elif version in (1, 2):                # legacy, pre-checksum
                body = payload
            else:
                self.telemetry.events.emit(
                    "cache_incompatible",
                    f"summary cache {path} has unsupported version "
                    f"{version!r}; starting cold (file left in place)",
                    path=path, version=version)
                return
            summaries: Dict[str, _Summary] = {}
            for fp, entries in body["summaries"].items():
                summary = _Summary()
                summary.entries = dict(entries)
                summaries[fp] = summary
            costs = {qual: float(cost)
                     for qual, cost in body.get("costs", {}).items()}
        except _CACHE_LOAD_ERRORS as exc:
            self._quarantine_cache(path, exc)
            return
        self._summaries.update(summaries)
        self._cost_by_qual.update(costs)

    def _quarantine_cache(self, path: str, exc: BaseException) -> None:
        """Move a corrupt cache file aside and publish the failure.

        Quarantine names are unique (``.corrupt.<pid>.<seq>``) so a
        second corruption cannot clobber the first post-mortem, with
        bounded retention: only the newest ``_QUARANTINE_KEEP``
        quarantined files survive each new quarantine."""
        global _quarantine_seq
        _quarantine_seq += 1
        quarantined: Optional[str] = \
            f"{path}.corrupt.{os.getpid()}.{_quarantine_seq}"
        try:
            os.replace(path, quarantined)
        except OSError:
            quarantined = None                # even the move failed
        else:
            self._prune_quarantines(path)
        self.stats.cache_quarantines += 1
        if self.telemetry.metrics.enabled:
            self.telemetry.metrics.counter(
                "resilience.cache_quarantines").inc()
        error = f"{type(exc).__name__}: {exc}"
        self.telemetry.events.emit(
            "cache_corrupt",
            f"summary cache {path} is corrupt ({error}); "
            + (f"quarantined to {quarantined} and rebuilding cold"
               if quarantined else
               "quarantine failed, rebuilding cold anyway"),
            path=path, error=error, quarantined=quarantined)
        print(f"repro: summary cache {path} is corrupt ({error}); "
              f"rebuilding cold", file=sys.stderr)

    @staticmethod
    def _prune_quarantines(path: str) -> None:
        """Keep only the newest ``_QUARANTINE_KEEP`` quarantined
        copies of ``path`` (``.corrupt`` and ``.corrupt.<pid>.<seq>``
        alike), deleting older ones — post-mortems stay available
        without the cache directory growing without bound."""
        directory = os.path.dirname(path) or "."
        prefix = os.path.basename(path) + ".corrupt"
        try:
            names = [name for name in os.listdir(directory)
                     if name.startswith(prefix)]
        except OSError:
            return
        stamped: List[Tuple[float, str]] = []
        for name in names:
            full = os.path.join(directory, name)
            try:
                stamped.append((os.stat(full).st_mtime, full))
            except OSError:
                continue
        stamped.sort(key=lambda item: (item[0], item[1]), reverse=True)
        for _mtime, full in stamped[_QUARANTINE_KEEP:]:
            try:
                os.unlink(full)
            except OSError:
                pass

    def _save_cache(self) -> None:
        """Atomically persist the summary cache: unique temp file,
        fsync, rename — with a content checksum over the body so the
        next load can prove it read what this process wrote."""
        body = pickle.dumps({
            "summaries": {fp: s.entries for fp, s in self._summaries.items()},
            "costs": dict(self._cost_by_qual),
        }, protocol=pickle.HIGHEST_PROTOCOL)
        payload = {
            "version": _PICKLE_VERSION,
            "sha256": cache_checksum(body),
            "data": body,
        }
        path = self._cache_path()
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump(payload, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            self.telemetry.events.emit(
                "cache_write_failed",
                f"could not persist summary cache to {path}: {exc}",
                path=path, error=f"{type(exc).__name__}: {exc}")
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        if self.fault_plan is not None and self.fault_plan.take_cache_flip():
            offset = self.fault_plan.flip_file_byte(path)
            self.telemetry.events.emit(
                "fault_injected",
                f"flipped byte {offset} of {path} (injected fault)",
                fault="flip-cache", path=path, offset=offset)
