"""Driver-stack and compiled-driver tests (paper §4: drivers sit
within stacks; checked code deploys compiled with keys erased)."""

import pytest

from repro.drivers import FloppyHarness
from repro.drivers.stack import StackedHarness, crypt_source
from repro.kernel import STATUS_SUCCESS


@pytest.fixture(scope="module")
def stack():
    harness = StackedHarness(secret=42)
    assert harness.reporter.ok, harness.reporter.render()
    harness.boot()
    return harness


class TestStackedDrivers:
    def test_both_drivers_check_together(self, stack):
        assert stack.reporter.ok

    def test_stack_is_attached(self, stack):
        assert stack.crypt_fdo.lower.name == "floppy0"
        assert stack.host.kernel.devices["floppy0"].lower.name == \
            "floppy-pdo"

    def test_write_stores_ciphertext(self, stack):
        payload = b"plaintext!"
        irp = stack.write(0, payload)
        assert irp.status == STATUS_SUCCESS
        raw = stack.raw_sector(0, len(payload))
        assert raw != payload
        # The additive stream cipher with secret 42.
        assert bytes((b + 42) % 256 for b in payload) == raw

    def test_read_decrypts(self, stack):
        payload = b"round trip through two drivers"
        stack.write(512, payload)
        irp, data = stack.read(512, len(payload))
        assert irp.status == STATUS_SUCCESS
        assert data == payload

    def test_callers_write_buffer_restored(self, stack):
        # CryptWrite encrypts in place but its completion routine
        # restores the caller's buffer afterwards.
        buffer = list(b"restore me")
        irp = stack._request(4, buffer=buffer, length=len(buffer),
                             offset=2048)
        assert bytes(buffer) == b"restore me"

    def test_completion_routines_run_lifo(self, stack):
        # Crypt registers its routine before the IRP descends; the
        # floppy driver forwards without one; the PDO completes; the
        # crypt routine must run exactly once per transfer.
        before = stack.host.kernel.devices["crypt0"].extension \
            .fields["reads_filtered"]
        stack.read(0, 4)
        after = stack.host.kernel.devices["crypt0"].extension \
            .fields["reads_filtered"]
        assert after == before + 1

    def test_passthrough_requests(self, stack):
        assert stack.open().status == STATUS_SUCCESS
        assert stack.pnp().status == STATUS_SUCCESS
        assert stack.close().status == STATUS_SUCCESS

    def test_no_leaks_through_the_stack(self, stack):
        stack.write(0, b"x" * 64)
        stack.read(0, 64)
        assert stack.audit() == []

    def test_crypt_source_checks_alone_fails_without_floppy(self):
        # crypt.vlt references nothing from floppy.vlt, so it also
        # checks standalone.
        from repro import check_source
        report = check_source(crypt_source())
        assert report.ok, report.render()


class TestCompiledDriver:
    @pytest.fixture(scope="class")
    def compiled(self):
        harness = FloppyHarness(compiled=True)
        assert harness.reporter.ok
        harness.boot()
        return harness

    def test_compiled_driver_serves_io(self, compiled):
        payload = b"compiled deployment model"
        compiled.write(0, payload)
        irp, data = compiled.read(0, len(payload))
        assert irp.status == STATUS_SUCCESS
        assert data == payload

    def test_compiled_pnp_runs_figure7(self, compiled):
        irp = compiled.pnp()
        assert irp.status == STATUS_SUCCESS
        assert any("reclaimed" in line
                   for line in compiled.host.kernel.log)

    def test_compiled_stats_under_lock(self, compiled):
        total_before = compiled.stats_total()
        compiled.read(0, 8)
        assert compiled.stats_total() == total_before + 1

    def test_compiled_stack_round_trips(self):
        stack = StackedHarness(secret=7, compiled=True)
        stack.boot()
        payload = b"compiled two-driver stack"
        stack.write(0, payload)
        assert stack.raw_sector(0, len(payload)) != payload
        _irp, data = stack.read(0, len(payload))
        assert data == payload
        assert stack.audit() == []

    def test_compiled_matches_interpreted(self):
        interp_h = FloppyHarness()
        interp_h.boot()
        comp_h = FloppyHarness(compiled=True)
        comp_h.boot()
        for h in (interp_h, comp_h):
            h.open()
            h.write(100, b"same behaviour")
            _irp, data = h.read(100, 14)
            assert data == b"same behaviour"
            h.close()
        assert interp_h.stats_total() == comp_h.stats_total()
        assert interp_h.audit() == comp_h.audit() == []
