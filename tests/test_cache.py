"""The tiered shared store: envelopes, tiers, orchestration, wire ops.

Covers the ``repro.cache`` package bottom-up — blob envelope and key
discipline, each tier's contract (memory LRU bounds, CAS crash safety
and GC, remote breaker behaviour), the :class:`SharedStore`
fall-through/promotion/containment logic — and the integration edges:
the daemon's ``cache_get``/``cache_put`` validation, the session's
chaos gating, and the quarantine retention bound.
"""

from __future__ import annotations

import base64
import os
import threading
import time

import pytest

from repro.analysis import synthesize_program
from repro.cache import (CASTier, MemoryTier, RemoteTier, SharedStore,
                         StoreError, Tier, check_blob, decode_blob,
                         encode_blob, is_remote_spec, open_store,
                         options_salt, summary_store_key, unit_store_key,
                         valid_key)
from repro.cache.cas import CORRUPT_KEEP
from repro.pipeline import CheckSession, FaultPlan
from repro.pipeline.session import _QUARANTINE_KEEP


def key_of(n: int, kind: str = "s") -> str:
    """A syntactically valid store key derived from ``n``."""
    return f"{n:064x}"[-64:] + "-" + kind


def blob_of(obj: object) -> bytes:
    return encode_blob(obj)


# ---------------------------------------------------------------------------
# Envelope and keys
# ---------------------------------------------------------------------------

class TestEnvelope:
    def test_round_trip(self):
        payload = {"diags": ("a", "b"), "functions": 3}
        assert decode_blob(encode_blob(payload)) == payload

    def test_check_blob_returns_body_without_unpickling(self):
        blob = encode_blob([1, 2, 3])
        body = check_blob(blob)
        assert isinstance(body, bytes)
        assert blob.endswith(body)

    def test_bad_magic_rejected(self):
        with pytest.raises(StoreError):
            check_blob(b"not-a-vaultc-blob\n" + b"x" * 100)

    def test_truncated_envelope_rejected(self):
        blob = encode_blob("hello")
        with pytest.raises(StoreError):
            check_blob(blob[:20])

    def test_flipped_bit_rejected(self):
        blob = bytearray(encode_blob({"v": 1}))
        blob[-1] ^= 0x40
        with pytest.raises(StoreError):
            check_blob(bytes(blob))

    def test_checksum_over_wrong_body_rejected(self):
        a, b = encode_blob("aaaa"), encode_blob("bbbbbb")
        # splice a's header onto b's body
        header_len = len(a) - len(check_blob(a))
        with pytest.raises(StoreError):
            check_blob(a[:header_len] + check_blob(b))


class TestKeys:
    def test_valid_keys(self):
        assert valid_key("0" * 64 + "-s")
        assert valid_key("a1b2" * 16 + "-u")

    @pytest.mark.parametrize("bad", [
        None, 42, b"0" * 64 + b"-s",
        "0" * 64,                      # no kind
        "0" * 64 + "-x",               # unknown kind
        "0" * 63 + "-s",               # short digest
        "0" * 64 + "_s",               # wrong separator
        "A" * 64 + "-s",               # uppercase hex
        "../" + "0" * 61 + "-s",       # traversal attempt
        "0" * 30 + "/" + "0" * 33 + "-s",
    ])
    def test_invalid_keys(self, bad):
        assert not valid_key(bad)

    def test_summary_key_depends_on_fingerprint_and_salt(self):
        salt = options_salt(True, None, True, 2)
        k1 = summary_store_key("fp1", salt)
        assert valid_key(k1) and k1.endswith("-s")
        assert k1 == summary_store_key("fp1", salt)
        assert k1 != summary_store_key("fp2", salt)
        assert k1 != summary_store_key("fp1",
                                       options_salt(True, None, True, 3))

    def test_unit_key_depends_on_source_filename_and_salt(self):
        salt = options_salt(True, ["region"], True, 2)
        k1 = unit_store_key("src", "f.vlt", salt)
        assert valid_key(k1) and k1.endswith("-u")
        assert k1 == unit_store_key("src", "f.vlt", salt)
        assert k1 != unit_store_key("src2", "f.vlt", salt)
        assert k1 != unit_store_key("src", "g.vlt", salt)
        assert k1 != unit_store_key("src", "f.vlt",
                                    options_salt(False, ["region"], True, 2))

    def test_is_remote_spec(self):
        assert is_remote_spec("daemon")
        assert is_remote_spec("daemon:/tmp/x.sock")
        assert not is_remote_spec("/tmp/cache")
        assert not is_remote_spec("")
        assert not is_remote_spec(None)


# ---------------------------------------------------------------------------
# MemoryTier
# ---------------------------------------------------------------------------

class TestMemoryTier:
    def test_round_trip_and_miss(self):
        tier = MemoryTier()
        tier.put_many({key_of(1): b"one", key_of(2): b"two"})
        got = tier.get_many([key_of(1), key_of(2), key_of(3)])
        assert got == {key_of(1): b"one", key_of(2): b"two"}

    def test_entry_bound_evicts_lru(self):
        tier = MemoryTier(max_entries=3)
        for n in range(3):
            tier.put_many({key_of(n): b"x"})
        tier.get_many([key_of(0)])            # freshen 0
        tier.put_many({key_of(9): b"x"})      # evicts 1, the LRU
        assert tier.get_many([key_of(1)]) == {}
        assert key_of(0) in tier.get_many([key_of(0)])
        assert tier.evictions == 1

    def test_byte_bound_evicts(self):
        tier = MemoryTier(max_bytes=100)
        tier.put_many({key_of(n): b"y" * 40 for n in range(4)})
        assert len(tier) < 4
        assert tier.evictions >= 2
        snap = tier.stats_snapshot()
        assert snap["bytes"] <= 100

    def test_overwrite_does_not_leak_bytes(self):
        tier = MemoryTier()
        tier.put_many({key_of(1): b"a" * 50})
        tier.put_many({key_of(1): b"b" * 10})
        assert tier.stats_snapshot()["bytes"] == 10

    def test_discard(self):
        tier = MemoryTier()
        tier.put_many({key_of(1): b"one"})
        tier.discard(key_of(1))
        assert tier.get_many([key_of(1)]) == {}
        assert tier.stats_snapshot()["bytes"] == 0


# ---------------------------------------------------------------------------
# CASTier
# ---------------------------------------------------------------------------

class TestCASTier:
    def test_round_trip_survives_reopen(self, tmp_path):
        root = str(tmp_path / "cas")
        writer = CASTier(root)
        writer.put_many({key_of(7): blob_of("seven")})
        reader = CASTier(root)                # fresh instance, same dir
        got = reader.get_many([key_of(7)])
        assert decode_blob(got[key_of(7)]) == "seven"

    def test_sharded_layout_and_no_stray_tmp(self, tmp_path):
        root = str(tmp_path / "cas")
        tier = CASTier(root)
        key = key_of(0xabc)
        tier.put_many({key: blob_of(1)})
        assert os.path.exists(os.path.join(root, key[:2], key))
        shard = os.listdir(os.path.join(root, key[:2]))
        assert shard == [key], "no temp files may survive a clean put"

    def test_invalid_keys_never_touch_disk(self, tmp_path):
        root = str(tmp_path / "cas")
        tier = CASTier(root)
        tier.put_many({"../../etc/passwd-s": b"evil", "zz": b"junk"})
        assert tier.get_many(["../../etc/passwd-s", "zz"]) == {}
        assert not os.path.exists(os.path.join(str(tmp_path), "etc"))

    def test_discard_quarantines_with_unique_names(self, tmp_path):
        root = str(tmp_path / "cas")
        tier = CASTier(root)
        key = key_of(5)
        for _ in range(3):
            tier.put_many({key: blob_of("x")})
            tier.discard(key)
        qdir = os.path.join(root, "corrupt")
        names = os.listdir(qdir)
        assert len(names) == 3, "each quarantine must keep its own copy"
        assert all(name.startswith(key + ".corrupt.") for name in names)
        assert tier.quarantines == 3
        assert tier.get_many([key]) == {}

    def test_quarantine_retention_is_bounded(self, tmp_path):
        root = str(tmp_path / "cas")
        tier = CASTier(root)
        key = key_of(6)
        for _ in range(CORRUPT_KEEP + 5):
            tier.put_many({key: blob_of("x")})
            tier.discard(key)
        names = os.listdir(os.path.join(root, "corrupt"))
        assert len(names) == CORRUPT_KEEP

    def test_gc_bounds_the_store(self, tmp_path):
        root = str(tmp_path / "cas")
        tier = CASTier(root, max_bytes=10_000_000, fsync=False)
        blob = blob_of("z" * 1000)
        for n in range(40):
            tier.put_many({key_of(n): blob})
        report = tier.gc(force=True, max_bytes=len(blob) * 10)
        assert report["scanned"] == 40
        assert report["deleted"] > 0
        assert report["bytes_remaining"] <= len(blob) * 10
        remaining = CASTier(root)._objects()
        assert len(remaining) == 40 - report["deleted"]

    def test_gc_deletes_oldest_first(self, tmp_path):
        root = str(tmp_path / "cas")
        tier = CASTier(root, fsync=False)
        blob = blob_of("z" * 100)
        tier.put_many({key_of(1): blob})
        old = os.path.join(root, key_of(1)[:2], key_of(1))
        os.utime(old, (time.time() - 9999, time.time() - 9999))
        tier.put_many({key_of(2): blob})
        tier.gc(force=True, max_bytes=int(len(blob) / 0.7))
        assert not os.path.exists(old)
        assert tier.get_many([key_of(2)])

    def test_auto_gc_on_budget_overflow(self, tmp_path):
        root = str(tmp_path / "cas")
        blob = blob_of("z" * 1000)
        tier = CASTier(root, max_bytes=len(blob) * 5, fsync=False)
        for n in range(20):
            tier.put_many({key_of(n): blob})
        assert tier.evictions > 0
        assert len(tier._objects()) < 20

    def test_gc_force_sweeps_stale_tmp_files(self, tmp_path):
        root = str(tmp_path / "cas")
        tier = CASTier(root, fsync=False)
        tier.put_many({key_of(1): blob_of("x")})
        shard = os.path.join(root, key_of(1)[:2])
        stale = os.path.join(shard, key_of(1) + ".tmp.999.1")
        with open(stale, "wb") as handle:
            handle.write(b"torn write")
        os.utime(stale, (time.time() - 7200, time.time() - 7200))
        tier.gc(force=True)
        assert not os.path.exists(stale)
        assert tier.get_many([key_of(1)]), "real objects must survive"

    def test_concurrent_writers_same_keys(self, tmp_path):
        root = str(tmp_path / "cas")
        blobs = {key_of(n): blob_of(f"value-{n}") for n in range(30)}
        errors = []

        def hammer():
            tier = CASTier(root, fsync=False)
            try:
                for _ in range(5):
                    tier.put_many(blobs)
            except Exception as exc:             # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        reader = CASTier(root)
        got = reader.get_many(list(blobs))
        assert len(got) == 30
        for key, blob in got.items():
            assert check_blob(blob), "no torn objects under final names"
            assert got[key] == blobs[key]


# ---------------------------------------------------------------------------
# SharedStore orchestration
# ---------------------------------------------------------------------------

class _ExplodingTier(Tier):
    name = "exploding"

    def get_many(self, keys):
        raise OSError("tier on fire")

    def put_many(self, blobs):
        raise OSError("tier on fire")


class TestSharedStore:
    def test_fall_through_and_promotion(self, tmp_path):
        fast = MemoryTier()
        slow = CASTier(str(tmp_path / "cas"), fsync=False)
        slow.put_many({key_of(1): blob_of("deep")})
        store = SharedStore([fast, slow])
        assert store.fetch([key_of(1)]) == {key_of(1): "deep"}
        assert fast.get_many([key_of(1)]), \
            "a slow-tier hit must be promoted into the fast tier"
        assert store.counts["memory"].misses == 1
        assert store.counts["cas"].hits == 1

    def test_write_through_all_tiers(self, tmp_path):
        fast = MemoryTier()
        slow = CASTier(str(tmp_path / "cas"), fsync=False)
        store = SharedStore([fast, slow])
        assert store.store({key_of(2): "obj"}) == 1
        assert fast.get_many([key_of(2)])
        assert slow.get_many([key_of(2)])

    def test_corrupt_blob_is_discarded_not_served(self, tmp_path):
        slow = CASTier(str(tmp_path / "cas"), fsync=False)
        slow.put_many({key_of(3): b"garbage, not an envelope"})
        store = SharedStore([slow])
        assert store.fetch([key_of(3)]) == {}
        assert store.counts["cas"].corrupt == 1
        assert slow.get_many([key_of(3)]) == {}, "corrupt blob must go"
        qdir = os.path.join(str(tmp_path / "cas"), "corrupt")
        assert os.listdir(qdir), "…into quarantine"

    def test_exploding_tier_is_contained(self):
        backing = MemoryTier()
        backing.put_many({key_of(4): blob_of("ok")})
        store = SharedStore([_ExplodingTier(), backing])
        assert store.fetch([key_of(4)]) == {key_of(4): "ok"}
        assert store.store({key_of(5): "new"}) == 1
        assert store.counts["exploding"].errors >= 2
        assert backing.get_many([key_of(5)])

    def test_put_blobs_rejects_bad_keys_and_envelopes(self):
        tier = MemoryTier()
        store = SharedStore([tier])
        stored = store.put_blobs({
            "not-a-key": blob_of("x"),
            key_of(6): b"not an envelope",
            key_of(7): blob_of("good"),
        })
        assert stored == 1
        assert list(tier.get_many([key_of(7)])) == [key_of(7)]
        assert len(tier) == 1

    def test_stats_snapshot_shape(self, tmp_path):
        store = SharedStore([MemoryTier(),
                             CASTier(str(tmp_path / "cas"))])
        snap = store.stats_snapshot()
        assert [t["tier"] for t in snap["tiers"]] == ["memory", "cas"]
        for t in snap["tiers"]:
            assert {"hits", "misses", "puts", "errors",
                    "corrupt"} <= set(t)

    def test_open_store_specs(self, tmp_path):
        cas = open_store(str(tmp_path / "d"))
        assert [t.name for t in cas.tiers] == ["cas"]
        remote = open_store("daemon:/tmp/nope.sock",
                            memory_tier=MemoryTier())
        assert [t.name for t in remote.tiers] == ["memory", "remote"]
        assert remote.tiers[1].socket_path == "/tmp/nope.sock"
        empty = open_store(None)
        assert empty.tiers == ()


# ---------------------------------------------------------------------------
# RemoteTier and the daemon's wire ops
# ---------------------------------------------------------------------------

@pytest.fixture()
def live_daemon(tmp_path):
    from repro.server import CheckServer
    sock = str(tmp_path / "d.sock")
    server = CheckServer(socket_path=sock,
                         shared_cache_dir=str(tmp_path / "cas"))
    server.bind()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield sock, server
    finally:
        server.request_stop()
        thread.join(10)
        server.close()


class TestRemoteTier:
    def test_round_trip_through_daemon(self, live_daemon):
        sock, _server = live_daemon
        writer = RemoteTier(sock)
        writer.put_many({key_of(1): blob_of("over the wire")})
        writer.close()
        reader = RemoteTier(sock)
        got = reader.get_many([key_of(1), key_of(2)])
        assert decode_blob(got[key_of(1)]) == "over the wire"
        assert key_of(2) not in got
        reader.close()

    def test_dead_daemon_breaker(self, tmp_path):
        tier = RemoteTier(str(tmp_path / "nothing.sock"),
                          retry_seconds=60.0)
        with pytest.raises(StoreError):
            tier.get_many([key_of(1)])
        assert tier.broken
        # During backoff: silent misses, no second exception.
        assert tier.get_many([key_of(1)]) == {}
        tier.put_many({key_of(1): blob_of("x")})

    def test_orchestrator_counts_remote_failure_once(self, tmp_path):
        store = SharedStore([RemoteTier(str(tmp_path / "nothing.sock"),
                                        retry_seconds=60.0)])
        assert store.fetch([key_of(1)]) == {}
        assert store.fetch([key_of(1)]) == {}
        assert store.counts["remote"].errors == 1, \
            "the breaker must absorb repeat failures"

    def test_daemon_rejects_malformed_cache_ops(self, live_daemon):
        sock, _server = live_daemon
        from repro.server import DaemonClient
        with DaemonClient(sock) as client:
            reply = client.request({"op": "cache_get", "keys": "nope"})
            assert reply["ok"] is False
            reply = client.request({"op": "cache_put", "blobs": [1, 2]})
            assert reply["ok"] is False

    def test_daemon_drops_bad_keys_and_bad_base64(self, live_daemon):
        sock, server = live_daemon
        from repro.server import DaemonClient
        good = base64.b64encode(blob_of("fine")).decode("ascii")
        with DaemonClient(sock) as client:
            reply = client.request({"op": "cache_put", "blobs": {
                "../escape-s": good,            # invalid key
                key_of(8): "!!! not base64",    # undecodable
                key_of(9): base64.b64encode(b"junk").decode("ascii"),
                key_of(10): good,               # the only good one
            }})
        assert reply == {"ok": True, "stored": 1}
        assert server.shared_store.get_blobs([key_of(10)])
        assert server.shared_store.get_blobs([key_of(9)]) == {}


# ---------------------------------------------------------------------------
# Session integration edges
# ---------------------------------------------------------------------------

class TestSessionIntegration:
    def test_fault_plan_disables_shared_store(self):
        store = SharedStore([MemoryTier()])
        with CheckSession(fault_plan=FaultPlan.parse("crash@0"),
                          shared_store=store) as session:
            assert session.shared_store is None, \
                "chaos sessions must not publish results"

    def test_unit_replay_across_sessions(self):
        source = synthesize_program(8, seed=3, error_rate=0.3)
        store = SharedStore([MemoryTier()])
        with CheckSession(units=["region"], shared_store=store) as a:
            expected = a.check(source).render()
        assert a.stats.shared_puts > 0
        with CheckSession(units=["region"], shared_store=store) as b:
            rendered = b.check(source).render()
        assert rendered == expected
        assert b.stats.shared_unit_hits == 1
        assert b.stats.functions_checked == 0

    def test_summary_reuse_after_edit(self):
        source = synthesize_program(8, seed=3)
        store = SharedStore([MemoryTier()])
        with CheckSession(units=["region"], shared_store=store) as a:
            a.check(source)
        edited = source.replace(
            "int worker_3(int input) {\n    tracked",
            "int worker_3(int input) {\n    // edited\n    tracked", 1)
        assert edited != source
        with CheckSession(units=["region"], shared_store=store) as b:
            b.check(edited)
        assert b.stats.shared_unit_hits == 0, "edited unit can't replay"
        assert b.stats.shared_summary_hits >= 7, \
            "unedited functions must come from the shared store"
        assert b.stats.functions_checked <= 1

    def test_different_options_do_not_cross_contaminate(self):
        source = synthesize_program(6, seed=4, error_rate=0.3)
        store = SharedStore([MemoryTier()])
        with CheckSession(units=["region"], shared_store=store) as a:
            a.check(source)
        with CheckSession(units=["region"], shared_store=store,
                          max_loop_iterations=5) as b:
            b.check(source)
        assert b.stats.shared_unit_hits == 0, \
            "different loop bound → different diagnostics → other key"

    def test_quarantine_retention_bound(self, tmp_path):
        path = str(tmp_path / "summaries.pkl")
        for n in range(_QUARANTINE_KEEP + 4):
            with open(f"{path}.corrupt.{os.getpid()}.{n}", "wb") as fh:
                fh.write(b"old post-mortem")
        with open(path + ".corrupt", "wb") as fh:    # legacy name
            fh.write(b"older still")
        CheckSession._prune_quarantines(path)
        survivors = [name for name in os.listdir(str(tmp_path))
                     if ".corrupt" in name]
        assert len(survivors) == _QUARANTINE_KEEP
