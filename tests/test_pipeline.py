"""Tests for the incremental/parallel checking pipeline.

Covers the three layers of :mod:`repro.pipeline`:

* the chunk splitter (textual declaration boundaries + fallback);
* the summary cache (precise invalidation: body edits, callee effect
  edits and stateset edits each invalidate exactly the dependents);
* the session itself (equivalence with ``check_source``, parallel
  byte-identity, on-disk persistence).
"""

from __future__ import annotations

import pytest

from repro import check_source
from repro.analysis import synthesize_program
from repro.core import program_cfgs
from repro.pipeline import CheckSession, ChunkError, split_chunks
from repro.stdlib import stdlib_context
from repro.syntax import parse_program

UNITS = ["region"]

#: A unit exercising every dependency edge the fingerprint must track:
#: ``caller`` depends on ``advance``'s effect clause, which depends on
#: the global key ``GK``, which depends on the stateset ``L``;
#: ``bystander`` depends on none of them.
PROTO = """\
stateset L = [ lo < hi ];
key GK @ L;

void advance() [GK @ lo -> hi];

void caller() [GK @ lo -> hi] {
    advance();
}

int bystander(int x) {
    int y = x + 1;
    return y;
}
"""


def fresh_session(**kwargs):
    kwargs.setdefault("units", UNITS)
    return CheckSession(**kwargs)


# ---------------------------------------------------------------------------
# Chunk splitting
# ---------------------------------------------------------------------------

class TestSplitChunks:
    def test_concatenation_reproduces_source(self):
        source = synthesize_program(20, seed=7)
        chunks = split_chunks(source)
        assert "".join(c.text for c in chunks) == source
        assert len(chunks) == 21  # struct cell + 20 functions

    def test_positions_match_parse(self):
        source = PROTO
        chunks = split_chunks(source)
        # Re-parsing each chunk at its recorded position must give the
        # same declarations (with the same spans) as a whole parse.
        whole = parse_program(source, "u.vlt")
        partial = []
        for chunk in chunks:
            prog = parse_program(chunk.text, "u.vlt",
                                 first_line=chunk.start_line,
                                 first_col=chunk.start_col)
            partial.extend(prog.decls)
        assert len(partial) == len(whole.decls)
        for a, b in zip(partial, whole.decls):
            assert a.span.start.line == b.span.start.line
            assert a.span.start.col == b.span.start.col

    def test_braces_in_strings_and_chars_ignored(self):
        source = 'void f() { string s = "}{"; char c = \'{\'; }\nvoid g() { }\n'
        chunks = split_chunks(source)
        assert len(chunks) == 2
        assert chunks[1].text.lstrip().startswith("void g")

    def test_ctor_tick_is_not_a_char_literal(self):
        source = "void f() { state = 'Open; }\nvoid g() { }\n"
        assert len(split_chunks(source)) == 2

    def test_unterminated_comment_raises(self):
        with pytest.raises(ChunkError):
            split_chunks("void f() { } /* never closed")

    def test_unbalanced_braces_raise(self):
        with pytest.raises(ChunkError):
            split_chunks("void f() { { }")

    def test_fallback_matches_plain_check(self):
        # A splitter-hostile unit must behave identically (the session
        # falls back to whole-unit parsing, which raises the same
        # error as the non-incremental path).
        source = "void f() { }\n/* open"
        session = fresh_session()
        with pytest.raises(Exception) as session_err:
            session.check(source)
        with pytest.raises(Exception) as plain_err:
            check_source(source, units=UNITS)
        assert str(session_err.value) == str(plain_err.value)


# ---------------------------------------------------------------------------
# Summary invalidation
# ---------------------------------------------------------------------------

class TestInvalidation:
    def test_body_edit_invalidates_only_that_function(self):
        session = fresh_session()
        session.check(PROTO)
        edited = PROTO.replace("int y = x + 1;", "int y = x + 2;")
        session.check(edited)
        assert session.stats.last_checked == ["bystander"]
        assert "caller" in session.stats.last_replayed

    def test_callee_effect_edit_invalidates_caller(self):
        session = fresh_session()
        session.check(PROTO)
        edited = PROTO.replace("void advance() [GK @ lo -> hi];",
                               "void advance() [GK @ lo];")
        session.check(edited)
        assert "caller" in session.stats.last_checked
        assert "bystander" not in session.stats.last_checked
        assert "bystander" in session.stats.last_replayed

    def test_stateset_edit_invalidates_dependents(self):
        session = fresh_session()
        session.check(PROTO)
        edited = PROTO.replace("stateset L = [ lo < hi ];",
                               "stateset L = [ lo < mid < hi ];")
        session.check(edited)
        assert "caller" in session.stats.last_checked
        assert "bystander" not in session.stats.last_checked

    def test_unrelated_edit_replays_everything(self):
        session = fresh_session()
        session.check(PROTO)
        # Pure trivia above the unit shifts every span but changes no
        # fingerprint: every summary must replay.
        session.check("// a comment\n" + PROTO)
        assert session.stats.last_checked == []

    def test_diagnostics_replay_with_spans(self):
        leaky = """\
void leak() {
    tracked(R) region rgn = Region.create();
}
"""
        session = fresh_session()
        first = session.check(leaky).render()
        assert session.stats.last_checked == ["leak"]
        second = session.check(leaky).render()
        assert session.stats.last_checked == []
        assert first == second
        assert first == check_source(leaky, units=UNITS).render()


# ---------------------------------------------------------------------------
# Session equivalence and parallel mode
# ---------------------------------------------------------------------------

class TestSessionEquivalence:
    @pytest.mark.parametrize("seed,error_rate", [(1, 0.0), (2, 0.25),
                                                 (3, 0.5)])
    def test_serial_matches_check_source(self, seed, error_rate):
        source = synthesize_program(30, seed=seed, error_rate=error_rate)
        expected = check_source(source, units=UNITS).render()
        session = fresh_session()
        assert session.check(source).render() == expected
        # ... and again, fully from cache.
        assert session.check(source).render() == expected

    @pytest.mark.parametrize("seed,error_rate", [(4, 0.0), (5, 0.3)])
    def test_parallel_output_byte_identical(self, seed, error_rate):
        source = synthesize_program(30, seed=seed, error_rate=error_rate)
        expected = check_source(source, units=UNITS).render()
        # A zero break-even forces the worker pool even though the
        # scheduler would stay serial for a workload this small.
        with fresh_session(jobs=2, break_even_seconds=0.0) as session:
            assert session.check(source).render() == expected
            assert session.stats.parallel_runs == 1
            # The pool persists: a second cold context against new
            # source forks fresh workers; identical source replays.
            assert session.check(source).render() == expected
            assert session.stats.pool_spawns == 1

    def test_syntax_error_behaves_like_check_source(self):
        source = "void f() { int x = ; }"
        session = fresh_session()
        with pytest.raises(Exception) as session_err:
            session.check(source)
        with pytest.raises(Exception) as plain_err:
            check_source(source, units=UNITS)
        assert str(session_err.value) == str(plain_err.value)

    def test_jobs_argument_overrides_default(self):
        source = synthesize_program(8, seed=6)
        expected = check_source(source, units=UNITS).render()
        session = fresh_session(jobs=4)
        assert session.check(source, jobs=1).render() == expected


# ---------------------------------------------------------------------------
# On-disk persistence
# ---------------------------------------------------------------------------

class TestPersistence:
    def test_round_trip(self, tmp_path):
        source = synthesize_program(12, seed=9, error_rate=0.3)
        cache = str(tmp_path / "cache")
        first = fresh_session(cache_dir=cache)
        expected = first.check(source).render()
        assert first.stats.functions_checked > 0

        second = fresh_session(cache_dir=cache)
        assert second.check(source).render() == expected
        assert second.stats.last_checked == []
        assert second.stats.functions_replayed > 0

    def test_corrupt_cache_is_ignored(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        (cache / "summaries.pkl").write_bytes(b"not a pickle")
        source = synthesize_program(4, seed=10)
        session = fresh_session(cache_dir=str(cache))
        assert session.check(source).render() == \
            check_source(source, units=UNITS).render()


# ---------------------------------------------------------------------------
# Shared infrastructure the pipeline leans on
# ---------------------------------------------------------------------------

class TestSharedState:
    def test_stdlib_context_is_cached_and_unharmed(self):
        base1, diags1 = stdlib_context(tuple(UNITS))
        source = synthesize_program(6, seed=11)
        check_source(source, units=UNITS)
        base2, diags2 = stdlib_context(tuple(UNITS))
        assert base1 is base2
        assert diags1 == diags2
        # Layering user programs on the cached base must not leak user
        # declarations back into it.
        assert "bystander" not in base1.functions
        assert all(not name.startswith("worker_")
                   for name in base1.functions)

    def test_repeated_checks_are_equivalent(self):
        source = PROTO
        renders = {check_source(source, units=UNITS).render()
                   for _ in range(3)}
        assert len(renders) == 1

    def test_reverse_postorder_well_formed(self):
        source = """\
int f(int n) {
    int acc = 0;
    while (n > 0) {
        if (n % 2 == 0) {
            acc += n;
        } else {
            acc -= n;
        }
        n = n - 1;
    }
    return acc;
}
"""
        cfg = program_cfgs(parse_program(source))["f"]
        rpo = cfg.reverse_postorder()
        ids = [b.id for b in rpo]
        assert ids[0] == cfg.entry.id
        assert len(ids) == len(set(ids))
        index = {bid: i for i, bid in enumerate(ids)}
        # Every edge that is not a back edge goes forward in RPO.
        forward = sum(1 for b in rpo for t, _ in b.succs
                      if index[b.id] < index.get(t.id, -1))
        assert forward > 0


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------

class TestTelemetry:
    def test_last_profile_is_a_view_of_telemetry(self):
        session = fresh_session()
        session.check(PROTO)
        assert session.last_profile is session.telemetry.profile
        assert session.telemetry.stats is session.stats
        assert "total_seconds" in session.last_profile
        assert "aborted" not in session.last_profile

    def test_aborted_check_marks_profile(self, monkeypatch):
        session = fresh_session()

        def boom(*args, **kwargs):
            raise RuntimeError("injected abort")

        monkeypatch.setattr(session, "_context_for", boom)
        with pytest.raises(RuntimeError, match="injected abort"):
            session.check(PROTO)
        profile = session.last_profile
        assert profile["aborted"] is True
        assert profile["error"] == "RuntimeError: injected abort"
        assert profile["total_seconds"] >= 0.0
        aborts = session.telemetry.events.by_kind("check_aborted")
        assert len(aborts) == 1
        assert "injected abort" in aborts[0].fields["error"]
        # The session recovers: the next check starts a fresh profile.
        monkeypatch.undo()
        report = session.check(PROTO)
        assert report.ok
        assert "aborted" not in session.last_profile

    def test_forced_pool_trace_has_worker_tracks(self):
        from repro.obs import Telemetry, validate_chrome_trace
        from repro.pipeline import fork_available
        if not fork_available():
            pytest.skip("needs os.fork")
        source = synthesize_program(24, seed=17)
        telemetry = Telemetry(trace=True, metrics=True)
        with CheckSession(units=UNITS, jobs=2, break_even_seconds=0.0,
                          telemetry=telemetry) as session:
            report = session.check(source)
        assert report.ok
        payload = telemetry.tracer.to_chrome()
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        pids = {e["pid"] for e in events}
        assert len(pids) >= 3  # main process + two pool workers
        names = {e["name"] for e in events}
        assert "pool_round_trip" in names
        assert "worker_batch" in names
        # Worker metric deltas fold into the parent registry.
        snap = telemetry.metrics.snapshot()
        assert snap["workers.functions_checked"]["value"] == 24
        assert session.stats.pool_spawns == 1


# ---------------------------------------------------------------------------
# Session reuse: a CheckSession is a long-lived object (the daemon
# keeps them warm for hours), so nothing from one check() may bleed
# into the next.
# ---------------------------------------------------------------------------

class TestSessionReuse:
    def test_back_to_back_checks_do_not_accumulate_diagnostics(self):
        clean = synthesize_program(3, seed=1)
        buggy = synthesize_program(3, seed=2, error_rate=1.0)
        with fresh_session() as session:
            first = session.check(buggy, "buggy.vlt")
            second = session.check(clean, "clean.vlt")
            third = session.check(buggy, "buggy.vlt")
        assert not first.ok and second.ok
        # A fresh check of the same sources must agree exactly: no
        # carried-over diagnostics, in either direction.
        assert second.render() == \
            check_source(clean, "clean.vlt", units=UNITS).render()
        assert third.render() == first.render()
        assert len(third.diagnostics) == len(first.diagnostics)

    def test_replay_profile_has_no_stale_check_seconds(self):
        with fresh_session() as session:
            session.check(PROTO, "p.vlt")
            assert "check_seconds" in session.last_profile
            session.check(PROTO, "p.vlt")         # whole-unit replay
            profile = session.last_profile
        assert profile["plan"] == "replayed whole unit"
        assert "check_seconds" not in profile, \
            "replay left the previous run's timing in the profile"

    def test_interleaved_sources_replay_from_their_own_caches(self):
        a = synthesize_program(4, seed=3)
        b = synthesize_program(4, seed=4)
        with fresh_session() as session:
            session.check(a, "a.vlt")
            session.check(b, "b.vlt")
            session.check(a, "a.vlt")
            session.check(b, "b.vlt")
            assert session.stats.checks == 4
            # Rounds three and four re-check nothing.
            assert session.stats.functions_checked == 8  # 2 * 4 workers
            assert session.stats.last_checked == []

    def test_summary_and_cost_caches_are_bounded(self, monkeypatch):
        import repro.pipeline.session as session_mod
        monkeypatch.setattr(session_mod, "_MAX_SUMMARIES", 6)
        monkeypatch.setattr(session_mod, "_MAX_COSTS", 6)
        with fresh_session() as session:
            for seed in range(4):
                session.check(synthesize_program(4, seed=seed),
                              f"s{seed}.vlt")
            assert len(session._summaries) <= 6
            assert len(session._cost_by_qual) <= 6
            # Eviction must not corrupt checking: a fresh source still
            # produces the independent result.
            probe = synthesize_program(2, seed=99, error_rate=1.0)
            assert session.check(probe, "probe.vlt").render() == \
                check_source(probe, "probe.vlt", units=UNITS).render()

    def test_replay_does_not_rewrite_the_disk_cache(self, tmp_path):
        import os
        source = synthesize_program(5, seed=8)
        cache_dir = tmp_path / "cache"
        with fresh_session(cache_dir=str(cache_dir)) as session:
            session.check(source, "unit.vlt")
        cache_file = cache_dir / "summaries.pkl"
        assert cache_file.exists()
        stamp = os.stat(cache_file)
        blob = cache_file.read_bytes()
        with fresh_session(cache_dir=str(cache_dir)) as session:
            session.check(source, "unit.vlt")     # pure replay
            assert session.stats.functions_checked == 0
        after = os.stat(cache_file)
        assert cache_file.read_bytes() == blob
        assert (after.st_mtime_ns, after.st_ino) == \
            (stamp.st_mtime_ns, stamp.st_ino), \
            "a replay-only session rewrote an unchanged cache file"


# ---------------------------------------------------------------------------
# Front-end caches: token streams, relex splicing, eviction tracing
# ---------------------------------------------------------------------------


class TestFrontEndCaches:
    def _edit(self, source):
        at = source.index("c.value += ", len(source) // 2)
        end = source.index(";", at)
        return source[:at] + "c.value += 4242" + source[end:]

    def test_token_cache_serves_unchanged_chunks_on_edit(self):
        from repro.obs import Telemetry
        source = synthesize_program(12, seed=3)
        session = fresh_session(telemetry=Telemetry(metrics=True))
        session.check(source, "unit.vlt")
        assert session.stats.token_hits == 0
        hits0 = session.stats.token_hits
        session.check(self._edit(source), "unit.vlt")
        assert session.stats.token_hits > hits0, \
            "unchanged chunks must be served from the token cache"
        snapshot = session.telemetry.metrics.snapshot()
        assert snapshot["cache.tokens.hits"]["value"] == \
            session.stats.token_hits

    def test_edit_takes_relex_splice_path(self):
        source = synthesize_program(12, seed=3)
        session = fresh_session()
        session.check(source, "unit.vlt")
        edited = self._edit(source)
        report = session.check(edited, "unit.vlt")
        assert session.stats.relex_splices >= 1
        assert session.stats.relex_fallbacks == 0
        assert report.render() == \
            check_source(edited, "unit.vlt", units=UNITS).render(), \
            "spliced-token output must match a from-scratch check"

    def test_token_cache_eviction_is_traced(self, monkeypatch):
        from repro.obs import Telemetry
        from repro.pipeline import session as session_mod
        monkeypatch.setattr(session_mod, "_MAX_TOKEN_STREAMS", 4)
        session = fresh_session(telemetry=Telemetry(metrics=True))
        session.check(synthesize_program(12, seed=3), "unit.vlt")
        snapshot = session.telemetry.metrics.snapshot()
        assert snapshot["cache.tokens.evictions"]["value"] > 0
        events = session.telemetry.events.by_kind("cache_evict")
        assert any(e.fields["layer"] == "tokens" for e in events)
        evicted = sum(e.fields["evicted"] for e in events
                      if e.fields["layer"] == "tokens")
        assert evicted == snapshot["cache.tokens.evictions"]["value"]
