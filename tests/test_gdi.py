"""GDI protocol tests (the §6 graphics domain): static and dynamic."""

import pytest

from repro.diagnostics import Code, RuntimeProtocolError
from repro.gfx import GdiSystem

from conftest import assert_ok, assert_rejected, run_program


class TestStaticProtocol:
    def test_full_drawing_session(self):
        assert_ok("""
void draw() {
    tracked(D) dc canvas = Gdi.get_dc(1);
    tracked(P) pen red = Gdi.create_pen(0xFF0000);
    Gdi.select_pen(canvas, red);
    Gdi.draw_line(canvas, 0, 0, 10, 10);
    Gdi.draw_line(canvas, 10, 10, 20, 0);
    Gdi.deselect_pen(canvas, red);
    Gdi.release_dc(canvas);
    Gdi.delete_pen(red);
}
""")

    def test_draw_without_pen(self):
        assert_rejected("""
void draw() {
    tracked(D) dc canvas = Gdi.get_dc(1);
    Gdi.draw_line(canvas, 0, 0, 10, 10);
    Gdi.release_dc(canvas);
}
""", Code.KEY_WRONG_STATE)

    def test_release_with_pen_selected(self):
        assert_rejected("""
void draw() {
    tracked(D) dc canvas = Gdi.get_dc(1);
    tracked(P) pen red = Gdi.create_pen(1);
    Gdi.select_pen(canvas, red);
    Gdi.release_dc(canvas);
    Gdi.delete_pen(red);
}
""", Code.KEY_WRONG_STATE)

    def test_delete_selected_pen(self):
        assert_rejected("""
void draw() {
    tracked(D) dc canvas = Gdi.get_dc(1);
    tracked(P) pen red = Gdi.create_pen(1);
    Gdi.select_pen(canvas, red);
    Gdi.delete_pen(red);
    Gdi.deselect_pen(canvas, red);
    Gdi.release_dc(canvas);
}
""", Code.KEY_WRONG_STATE)

    def test_leaked_dc(self):
        assert_rejected("""
void draw() {
    tracked(D) dc canvas = Gdi.get_dc(1);
}
""", Code.KEY_LEAKED)

    def test_leaked_pen(self):
        assert_rejected("""
void draw() {
    tracked(D) dc canvas = Gdi.get_dc(1);
    tracked(P) pen red = Gdi.create_pen(1);
    Gdi.release_dc(canvas);
}
""", Code.KEY_LEAKED)

    def test_pen_reuse_across_dcs(self):
        assert_ok("""
void draw() {
    tracked(P) pen red = Gdi.create_pen(1);
    tracked(A) dc first = Gdi.get_dc(1);
    Gdi.select_pen(first, red);
    Gdi.draw_line(first, 0, 0, 1, 1);
    Gdi.deselect_pen(first, red);
    Gdi.release_dc(first);
    tracked(B) dc second = Gdi.get_dc(2);
    Gdi.select_pen(second, red);
    Gdi.draw_line(second, 2, 2, 3, 3);
    Gdi.deselect_pen(second, red);
    Gdi.release_dc(second);
    Gdi.delete_pen(red);
}
""")


class TestExecution:
    def test_lines_recorded_with_pen_color(self):
        _result, host = run_program("""
void main() {
    tracked(D) dc canvas = Gdi.get_dc(1);
    tracked(P) pen red = Gdi.create_pen(7);
    Gdi.select_pen(canvas, red);
    Gdi.draw_line(canvas, 0, 0, 4, 4);
    Gdi.deselect_pen(canvas, red);
    Gdi.release_dc(canvas);
    Gdi.delete_pen(red);
}
""")
        assert host.gdi.total_lines() == 1
        dc = host.gdi.dcs[0]
        assert dc.lines[0] == (0, 0, 4, 4, 7)
        assert host.audit() == []


class TestSubstrate:
    def test_wrong_pen_pairing_caught_at_runtime(self):
        # The static checker tracks the two keys independently; the
        # substrate enforces the pairing (documented in gdi.vlt).
        gdi = GdiSystem()
        dc1, dc2 = gdi.get_dc(1), gdi.get_dc(2)
        p1, p2 = gdi.create_pen(1), gdi.create_pen(2)
        gdi.select_pen(dc1, p1)
        gdi.select_pen(dc2, p2)
        with pytest.raises(RuntimeProtocolError):
            gdi.deselect_pen(dc1, p2)

    def test_audit_reports_unreleased(self):
        gdi = GdiSystem()
        gdi.get_dc(1)
        gdi.create_pen(3)
        assert len(gdi.audit()) == 2
