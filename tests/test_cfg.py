"""CFG construction and dataflow-engine tests."""

import pytest

from repro.core import (CFG, DefiniteAssignment, ForwardAnalysis, build_cfg,
                        dead_statement_count, program_cfgs)
from repro.drivers import driver_source
from repro.syntax import ast, parse_program


def cfg_of(source, name=None):
    program = parse_program(source)
    cfgs = program_cfgs(program)
    if name is None:
        assert len(cfgs) == 1
        return next(iter(cfgs.values()))
    return cfgs[name]


class TestConstruction:
    def test_straight_line(self):
        cfg = cfg_of("int f() { int x = 1; int y = 2; return x + y; }")
        stats = cfg.stats()
        assert stats["loops"] == 0
        assert stats["unreachable"] == 0
        assert stats["statements"] == 3

    def test_if_produces_diamond(self):
        cfg = cfg_of("""
int f(bool c) {
    int x = 0;
    if (c) { x = 1; } else { x = 2; }
    return x;
}
""")
        branch_blocks = [b for b in cfg.blocks if b.terminator == "branch"]
        assert len(branch_blocks) == 1
        labels = {label for _t, label in branch_blocks[0].succs}
        assert labels == {"true", "false"}

    def test_if_without_else_links_false_to_join(self):
        cfg = cfg_of("""
int f(bool c) {
    int x = 0;
    if (c) { x = 1; }
    return x;
}
""")
        assert cfg.stats()["unreachable"] == 0

    def test_while_has_back_edge(self):
        cfg = cfg_of("""
int f(int n) {
    int i = 0;
    while (i < n) { i++; }
    return i;
}
""")
        assert cfg.stats()["loops"] == 1

    def test_break_jumps_past_loop(self):
        cfg = cfg_of("""
int f(int n) {
    int i = 0;
    while (true) {
        if (i > n) { break; }
        i++;
    }
    return i;
}
""")
        breaks = [label for b in cfg.blocks
                  for _t, label in b.succs if label == "break"]
        assert len(breaks) == 1

    def test_continue_jumps_to_head(self):
        cfg = cfg_of("""
int f(int n) {
    int i = 0;
    int acc = 0;
    while (i < n) {
        i++;
        if (i % 2 == 0) { continue; }
        acc += i;
    }
    return acc;
}
""")
        continues = [label for b in cfg.blocks
                     for _t, label in b.succs if label == "continue"]
        assert len(continues) == 1

    def test_switch_edges_labelled_by_ctor(self):
        cfg = cfg_of("""
variant opt [ 'None | 'Some(int) ];
int f(opt v) {
    switch (v) {
        case 'None: return 0;
        case 'Some(n): return n;
    }
}
""", name="f")
        switch_block = [b for b in cfg.blocks if b.terminator == "switch"][0]
        labels = {label for _t, label in switch_block.succs}
        assert labels == {"None", "Some"}

    def test_dead_code_after_return_is_unreachable(self):
        cfg = cfg_of("""
int f() {
    return 1;
    int x = 2;
}
""")
        assert dead_statement_count(cfg) == 1

    def test_both_branches_return_join_unreachable(self):
        cfg = cfg_of("""
int f(bool c) {
    if (c) { return 1; } else { return 2; }
}
""")
        assert cfg.exit.id in cfg.reachable_blocks()

    def test_driver_cfgs_build(self):
        cfgs = program_cfgs(parse_program(driver_source()))
        assert "FloppyRead" in cfgs
        read_stats = cfgs["FloppyRead"].stats()
        assert read_stats["blocks"] > 5
        assert all(c.stats()["unreachable"] == 0 for c in cfgs.values())

    def test_render(self):
        cfg = cfg_of("int f() { return 1; }")
        text = cfg.render()
        assert "entry" in text and "exit" in text


class TestDataflow:
    def test_definite_assignment_straight_line(self):
        cfg = cfg_of("int f() { int x = 1; return x; }")
        assigned = DefiniteAssignment().definitely_assigned_at_exit(cfg)
        assert "x" in assigned

    def test_branch_assignment_must_cover_both_arms(self):
        cfg = cfg_of("""
int f(bool c) {
    int x = 0;
    if (c) { int y = 1; }
    return x;
}
""")
        assigned = DefiniteAssignment().definitely_assigned_at_exit(cfg)
        assert "x" in assigned
        assert "y" not in assigned

    def test_both_arms_assign(self):
        cfg = cfg_of("""
int f(bool c) {
    int y = 0;
    if (c) { y = 1; } else { y = 2; }
    return y;
}
""")
        assigned = DefiniteAssignment().definitely_assigned_at_exit(cfg)
        assert "y" in assigned

    def test_params_definitely_assigned(self):
        cfg = cfg_of("int f(int a, int b) { return a + b; }")
        analysis = DefiniteAssignment(params=["a", "b"])
        assert {"a", "b"} <= analysis.definitely_assigned_at_exit(cfg)

    def test_loop_body_assignment_not_definite(self):
        cfg = cfg_of("""
int f(int n) {
    int i = 0;
    while (i < n) { int inner = 3; i++; }
    return i;
}
""")
        assigned = DefiniteAssignment().definitely_assigned_at_exit(cfg)
        assert "i" in assigned
        assert "inner" not in assigned

    def test_generic_engine_converges_on_loops(self):
        cfg = cfg_of("""
int f(int n) {
    int i = 0;
    while (i < n) { i++; }
    return i;
}
""")
        # Count maximum path-length lattice: join = max, transfer = +len.
        analysis = ForwardAnalysis(
            entry_value=0,
            join=max,
            transfer=lambda block, v: min(v + len(block.stmts), 99))
        solved = analysis.solve(cfg)
        assert solved[cfg.exit.id] >= 2
