"""Incremental relexing: slice-lex span math and splice equivalence.

The two invariants the front end's incremental path rests on:

* **slice lexing** — lexing a suffix of a unit with the lexer's
  ``first_line``/``first_col`` seeding reproduces the whole-unit
  tokens (same lines/columns, offsets shifted by the slice start);
  this is what lets the chunker hand each chunk's text to the lexer
  with in-place spans;
* **relex splicing** — :func:`repro.syntax.relex` either returns a
  token stream equal (spans included) to a full ``tokenize`` of the
  new text, or ``None``; it never returns a wrong stream.

The hypothesis generators lean on the constructs whose span math is
easiest to get wrong: tick tokens (``'Name`` constructors and ``'x'``
char literals, where the old cursor lexer had one-character lookahead
rules) and multi-line block comments, which make a slice start mid-line
(line > 1, col > 1) so a bad seed shows up immediately.
"""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.diagnostics import LexError
from repro.syntax import T, relex, tokenize

SLOW = settings(max_examples=60,
                suppress_health_check=[HealthCheck.too_slow],
                deadline=None)

# Fragments biased toward span-math hazards: multi-line trivia, tick
# tokens, strings with escapes, and operators the lexer resolves with
# lookahead.  Joined with random separators they produce realistic
# token soup without hitting LexError too often to be useful.
_FRAGMENTS = st.sampled_from([
    "fn", "region", "x1", "_tmp", "Name",
    "'Open", "'Closed", "'C", "'x'", "'{'",
    "0x1F", "42", "3.14", "1e9",
    '"str"', '"a\\nb"', '"\\\\"',
    "->", "&&", "||", "==", "!=", "<=", ">=", "++", "--", "+=", "-=",
    "{", "}", "(", ")", "[", "]", ";", ",", ".", ":", "@", "|", "=",
    "+", "-", "/", "!", "<", ">", "*", "%",
    "// line comment",
    "/* block */", "/* two\nlines */", "/*\n * three\n * lines */",
])

_SEPARATORS = st.sampled_from([" ", "  ", "\n", "\n\n", "\t", " \n "])


@st.composite
def _sources(draw, min_fragments=1, max_fragments=40):
    frags = draw(st.lists(_FRAGMENTS, min_size=min_fragments,
                          max_size=max_fragments))
    seps = [draw(_SEPARATORS) for _ in frags]
    out = []
    for frag, sep in zip(frags, seps):
        out.append(frag)
        out.append(sep)
    return "".join(out)


def _shape(tok):
    """Everything but the offsets (slice lexing shifts those)."""
    return (tok.kind, tok.text, tok.line, tok.col, tok.end_col)


# ---------------------------------------------------------------------------
# Slice lexing: tokenize(whole)[k:] == tokenize(whole[off:], line, col).
# ---------------------------------------------------------------------------

@given(_sources(), st.integers(0, 1000))
@SLOW
def test_slice_lex_matches_whole_lex(source, pick):
    try:
        whole = tokenize(source)
    except LexError:
        return
    k = pick % len(whole)
    tok = whole[k]
    if tok.kind is T.EOF:
        return
    sliced = tokenize(source[tok.offset:], first_line=tok.line,
                      first_col=tok.col)
    assert [_shape(t) for t in sliced] == [_shape(t) for t in whole[k:]]
    for s, w in zip(sliced, whole[k:]):
        assert s.offset + tok.offset == w.offset
        assert s.end_offset + tok.offset == w.end_offset


def test_slice_lex_after_straddling_block_comment():
    # The comment ends mid-line, so the next token starts at line 3,
    # col > 1 — the seed a chunk handed to the lexer actually carries.
    source = "first\n/* straddles\ntwo lines */ 'Ctor 'x' last"
    whole = tokenize(source)
    tick = next(t for t in whole if t.kind is T.CTOR)
    assert (tick.line, tick.col) == (3, 14)
    sliced = tokenize(source[tick.offset:], first_line=tick.line,
                      first_col=tick.col)
    assert [_shape(t) for t in sliced] == \
        [_shape(t) for t in whole[whole.index(tick):]]


# ---------------------------------------------------------------------------
# Relex splicing: equal to a full lex, or None — never a wrong stream.
# ---------------------------------------------------------------------------

_EDITS = st.sampled_from([
    "", "z", "4242", "'New", "'y'", '"s"', "/* c */", "/*\n*/",
    "a + b;", "\n", "{ }",
])


@given(_sources(min_fragments=2), st.integers(0, 10_000),
       st.integers(0, 12), _EDITS)
@SLOW
def test_relex_equals_full_tokenize(old, at, width, insert):
    try:
        old_tokens = tokenize(old)
    except LexError:
        return
    at = at % (len(old) + 1)
    new = old[:at] + insert + old[at + width:]
    result = relex(old, old_tokens, new)
    try:
        full = tokenize(new)
    except LexError:
        # The edit produced an unlexable text: the splice must refuse
        # (the session then falls back and surfaces the error).
        assert result is None
        return
    if result is not None:
        assert result.tokens == full
        assert result.reused + result.fresh == len(result.tokens)


@given(_sources(min_fragments=2), st.integers(0, 10_000), _EDITS,
       st.integers(1, 40), st.integers(1, 30))
@SLOW
def test_relex_respects_slice_seeding(old, at, insert, line, col):
    try:
        old_tokens = tokenize(old, first_line=line, first_col=col)
    except LexError:
        return
    at = at % (len(old) + 1)
    new = old[:at] + insert + old[at:]
    result = relex(old, old_tokens, new, first_line=line, first_col=col)
    try:
        full = tokenize(new, first_line=line, first_col=col)
    except LexError:
        assert result is None
        return
    if result is not None:
        assert result.tokens == full


def test_relex_identical_text_reuses_everything():
    text = "region r { fn f() {} }"
    toks = tokenize(text)
    result = relex(text, toks, text)
    assert result is not None and result.fresh == 0
    assert result.tokens is toks


def test_relex_same_length_edit_shares_suffix_tokens():
    old = "x = 1; y = 2; z = 3;"
    new = "x = 9; y = 2; z = 3;"
    old_tokens = tokenize(old)
    result = relex(old, old_tokens, new)
    assert result is not None
    assert result.tokens == tokenize(new)
    # Zero-shift splice: the suffix tokens are the same objects.
    assert result.tokens[-2] is old_tokens[-2]


def test_relex_refuses_unlexable_edit():
    old = 'a = "ok";'
    old_tokens = tokenize(old)
    new = 'a = "broken\n";'
    with pytest.raises(LexError):
        tokenize(new)
    assert relex(old, old_tokens, new) is None
