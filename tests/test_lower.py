"""Erasure and Vault->Python compilation tests (the paper's
zero-run-time-cost claim)."""

import pytest

from repro import check_source, load_context, parse
from repro.analysis import CORPUS
from repro.drivers import driver_source
from repro.lower import (compile_to_python, erase_program, erase_programs,
                         load_compiled)
from repro.stdlib import stdlib_programs
from repro.stdlib.hostimpl import create_host, make_interpreter
from repro.syntax import ast, parse_program, pretty


class TestErasure:
    def test_tracked_types_become_plain(self):
        program = parse_program("void f(tracked(K) FILE g) [-K] { }")
        erased = erase_program(program)
        decl = erased.decls[0].decl
        assert isinstance(decl.params[0].type, ast.NamedType)
        assert decl.effect is None

    def test_guards_stripped(self):
        program = parse_program("type g<key K> = K:int;")
        erased = erase_program(program)
        assert isinstance(erased.decls[0].rhs, ast.BaseType)
        assert erased.decls[0].params == []

    def test_stateset_and_key_decls_removed(self):
        program = parse_program(
            "stateset L = [a < b]; key GK @ L; struct s { int v; }")
        erased = erase_program(program)
        assert len(erased.decls) == 1
        assert isinstance(erased.decls[0], ast.StructDecl)

    def test_variant_key_attachments_removed(self):
        program = parse_program(
            "variant st<key K> [ 'Ok {K@named} | 'Err(int) {K@raw} ];")
        erased = erase_program(program)
        variant = erased.decls[0]
        assert variant.params == []
        assert all(not c.keys for c in variant.ctors)

    def test_key_args_dropped_at_uses(self):
        program = parse_program("""
variant opt<key K, type T> [ 'N | 'S(T) {K} ];
void f(opt<Q, int> v, tracked(Q) FILE g) [-Q] { fclose(g); }
""")
        erased = erase_program(program)
        use = erased.decls[1].decl.params[0].type
        assert use.name == "opt"
        assert len(use.args) == 1          # only the type argument stays

    def test_ctor_key_braces_removed(self):
        program = parse_program("""
void f() {
    flag = 'SomeKey{F};
}
""")
        erased = erase_program(program)
        text = pretty(erased)
        assert "{F}" not in text

    def test_erased_program_reparses(self):
        erased = erase_program(parse_program(driver_source()))
        reparsed = parse_program(pretty(erased))
        assert pretty(erase_program(reparsed)) == pretty(erased)

    def test_erased_stdlib_plus_driver_builds(self):
        from repro.core import build_context
        from repro.diagnostics import Reporter
        programs = list(stdlib_programs()) + [parse_program(driver_source())]
        erased = erase_programs(programs)
        reporter = Reporter()
        build_context(erased, reporter)
        assert reporter.ok, reporter.render()


class TestPyGen:
    def compile_and_load(self, source):
        report = check_source(source)
        assert report.ok, report.render()
        code = compile_to_python(parse(source))
        host = create_host()
        return load_compiled(code, host), host, code

    def test_region_program_compiles_and_runs(self):
        module, host, code = self.compile_and_load("""
struct point { int x; int y; }
int main() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=1; y=2;};
    pt.x++;
    int v = pt.x * 10 + pt.y;
    Region.delete(rgn);
    return v;
}
""")
        assert module["main"]() == 22
        host.assert_no_leaks()

    def test_compiled_output_has_no_key_machinery(self):
        _module, _host, code = self.compile_and_load("""
void f(tracked(K) FILE g) [-K] {
    fclose(g);
}
""")
        body = code.split("def f(")[1]
        assert "key" not in body.lower()
        assert "guard" not in body.lower()

    def test_switch_compiles(self):
        module, _host, _code = self.compile_and_load("""
variant opt [ 'None | 'Some(int) ];
int pick(opt v) {
    switch (v) {
        case 'None: return 0;
        case 'Some(n): return n * 2;
    }
}
int main() {
    return pick('Some(21));
}
""")
        assert module["main"]() == 42

    def test_loops_and_recursion_compile(self):
        module, _host, _code = self.compile_and_load("""
int fact(int n) {
    if (n <= 1) { return 1; }
    return n * fact(n - 1);
}
int main() {
    int acc = 0;
    int i = 0;
    while (i < 4) { acc += fact(i + 1); i++; }
    return acc;
}
""")
        assert module["main"]() == 1 + 2 + 6 + 24

    def test_nested_functions_compile_to_closures(self):
        module, _host, _code = self.compile_and_load("""
int main() {
    int base = 5;
    int add(int x) { return x + base; }
    return add(10);
}
""")
        assert module["main"]() == 15

    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_corpus_compiled_matches_interpreted(self, name):
        program = CORPUS[name]
        ctx, reporter = load_context(program.source)
        assert reporter.ok

        host_i = create_host()
        interp = make_interpreter(ctx, host_i)
        interpreted = interp.call(program.entry)

        code = compile_to_python(parse(program.source))
        host_c = create_host()
        module = load_compiled(code, host_c)
        compiled = module[program.entry]()

        assert interpreted == compiled
        host_i.assert_no_leaks()
        host_c.assert_no_leaks()

    def test_compiled_dangling_faults_at_runtime(self):
        from repro.diagnostics import RuntimeProtocolError
        code = compile_to_python(parse("""
struct point { int x; int y; }
int main() {
    tracked(R) region rgn = Region.create();
    R:point p = new(rgn) point {x=1; y=2;};
    Region.delete(rgn);
    return p.x;
}
"""))
        module = load_compiled(code, create_host())
        with pytest.raises(RuntimeProtocolError):
            module["main"]()
