"""Analysis-layer tests: plain-checker baseline, mutation harness,
corpus, synthetic generator, metrics."""

import pytest

from repro import check_source
from repro.analysis import (CORPUS, PROTOCOL_CODES, compare_sizes,
                            count_lines, count_tokens, format_table,
                            generate_mutants, is_protocol_error,
                            plain_check, run_study, synthesize_program)
from repro.diagnostics import Code
from repro.drivers import driver_source

LEAKY = """
struct point { int x; int y; }
void leaky() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=1; y=2;};
    pt.x++;
}
"""


class TestPlainChecker:
    def test_protocol_bug_invisible_to_plain_checker(self):
        assert not check_source(LEAKY).ok
        assert plain_check(LEAKY).ok

    def test_ordinary_type_error_still_caught(self):
        bad = 'void f() { int x = "nope"; }'
        assert not plain_check(bad).ok

    def test_undefined_name_still_caught(self):
        assert not plain_check("void f() { mystery(); }").ok

    def test_driver_passes_plain_check(self):
        assert plain_check(driver_source()).ok

    def test_is_protocol_error(self):
        assert is_protocol_error(Code.KEY_LEAKED)
        assert not is_protocol_error(Code.TYPE_MISMATCH)

    def test_protocol_codes_cover_key_family(self):
        assert Code.KEY_NOT_HELD in PROTOCOL_CODES
        assert Code.JOIN_MISMATCH in PROTOCOL_CODES


class TestMutants:
    def test_mutants_generated_for_all_operators(self):
        program = CORPUS["region_pipeline"]
        mutants = generate_mutants(program.source)
        ops = {m.operator for m in mutants}
        assert ops == {"drop", "dup", "swap"}

    def test_each_mutant_differs_from_original(self):
        program = CORPUS["region_pipeline"]
        for mutant in generate_mutants(program.source):
            assert mutant.source != program.source

    def test_mutants_reparse(self):
        from repro.syntax import parse_program
        program = CORPUS["file_copy"]
        for mutant in generate_mutants(program.source):
            parse_program(mutant.source)

    def test_drop_release_is_static_leak(self):
        program = CORPUS["region_pipeline"]
        mutants = [m for m in generate_mutants(program.source, ["drop"])
                   if "Region.delete" in m.description]
        assert mutants
        for mutant in mutants:
            report = check_source(mutant.source)
            assert report.has(Code.KEY_LEAKED) or \
                report.has(Code.POSTCONDITION_MISMATCH)

    def test_dup_release_is_static_double_free(self):
        program = CORPUS["region_pipeline"]
        mutants = [m for m in generate_mutants(program.source, ["dup"])
                   if "Region.delete" in m.description]
        for mutant in mutants:
            report = check_source(mutant.source)
            assert report.has(Code.KEY_CONSUMED_MISSING) or \
                report.has(Code.KEY_NOT_HELD)

    def test_function_filter(self):
        program = CORPUS["region_pipeline"]
        mutants = generate_mutants(program.source, functions=["phase_two"])
        assert mutants
        assert all(m.function == "phase_two" for m in mutants)


class TestStudy:
    @pytest.fixture(scope="class")
    def study(self):
        program = CORPUS["region_pipeline"]
        return run_study(program.source, runner=program.runner)

    def test_vault_beats_plain(self, study):
        assert study.vault_detected > study.plain_detected

    def test_static_catches_what_dynamic_catches_here(self, study):
        # With a fully-covering workload, static detection should not
        # trail dynamic detection on protocol mutants.
        assert study.vault_detected >= study.dynamic_detected

    def test_rates_consistent(self, study):
        assert 0 <= study.rate("vault") <= 1
        assert study.total == len(study.results)

    def test_rows_structure(self, study):
        rows = study.rows()
        assert len(rows) == 4
        assert rows[0][1] == study.vault_detected

    def test_limit(self):
        program = CORPUS["file_copy"]
        summary = run_study(program.source, limit=3)
        assert summary.total == 3


class TestSyntheticCorpus:
    def test_clean_programs_check(self):
        for seed in range(3):
            source = synthesize_program(4, seed=seed)
            report = check_source(source, units=["region"])
            assert report.ok, report.render()

    def test_buggy_programs_rejected(self):
        source = synthesize_program(6, seed=7, error_rate=1.0)
        report = check_source(source, units=["region"])
        assert not report.ok
        assert all(is_protocol_error(c) or c is Code.KEY_NOT_HELD
                   for c in report.codes())

    def test_size_scales(self):
        small = synthesize_program(2, seed=0)
        large = synthesize_program(40, seed=0)
        assert count_lines(large) > count_lines(small) * 10

    def test_deterministic_for_seed(self):
        assert synthesize_program(5, seed=3) == synthesize_program(5, seed=3)


class TestMetrics:
    def test_count_lines_skips_comments_and_blanks(self):
        text = "// comment\n\nint x;\n/* block\nstill */\nint y;\n"
        assert count_lines(text) == 2

    def test_count_tokens(self):
        assert count_tokens("int x = 1;") == 5

    def test_driver_annotation_overhead_is_modest(self):
        # Paper: 4900 C lines -> 5200 Vault lines (~6%).  Our token
        # overhead should be positive but small (< 25%).
        cmp = compare_sizes(driver_source())
        assert cmp.vault_tokens > cmp.erased_tokens
        assert 0.0 < cmp.token_overhead < 0.25

    def test_char_overhead_positive(self):
        cmp = compare_sizes(driver_source())
        assert cmp.char_overhead > 0

    def test_format_table(self):
        table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0]


class TestCorpusPrograms:
    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_checks_clean(self, name):
        report = check_source(CORPUS[name].source)
        assert report.ok, report.render()

    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_runs_clean(self, name):
        assert CORPUS[name].runner(CORPUS[name].source) is None
