"""Stdlib integrity tests: every unit parses, elaborates, and every
extern function has a host implementation."""

import pytest

from repro import load_context
from repro.stdlib import STDLIB_UNITS, available_units, stdlib_source
from repro.stdlib.hostimpl import create_host
from repro.syntax import parse_program


class TestUnits:
    def test_all_declared_units_exist(self):
        available = available_units()
        for unit in STDLIB_UNITS:
            assert unit in available

    @pytest.mark.parametrize("unit", list(STDLIB_UNITS))
    def test_unit_parses(self, unit):
        program = parse_program(stdlib_source(unit))
        assert program.decls

    @pytest.mark.parametrize("unit", list(STDLIB_UNITS))
    def test_unit_elaborates_alone(self, unit):
        # ntkernel + others are self-contained per unit.
        ctx, reporter = load_context("void nothing() { }", units=[unit])
        assert reporter.ok, reporter.render()

    def test_units_compose(self):
        ctx, reporter = load_context("void nothing() { }")
        assert reporter.ok, reporter.render()


class TestHostCoverage:
    def test_every_stdlib_extern_has_a_host_implementation(self):
        ctx, reporter = load_context("void nothing() { }")
        assert reporter.ok
        host = create_host()
        missing = []
        for qual, sig in ctx.functions.items():
            if not sig.is_extern:
                continue
            if host.env.lookup(qual) is None:
                missing.append(qual)
        assert not missing, f"extern functions without host impl: {missing}"

    def test_hosts_are_isolated(self):
        a = create_host()
        b = create_host()
        a.regions.create("only-in-a")
        assert a.regions.audit() == ["only-in-a"]
        assert b.regions.audit() == []

    def test_driver_ioctls_registered_by_harness(self):
        from repro.drivers import FloppyHarness
        harness = FloppyHarness(check=False)
        for name in ("IOCTL_MOTOR_ON", "IOCTL_EJECT", "IOCTL_READ_STATS"):
            assert harness.host.env.lookup(name) is not None


class TestInterfaceShapes:
    @pytest.fixture(scope="class")
    def ctx(self):
        ctx, reporter = load_context("void nothing() { }")
        assert reporter.ok
        return ctx

    def test_socket_states_flow(self, ctx):
        bind = ctx.function("bind", module="Socket")
        listen = ctx.function("listen", module="Socket")
        from repro.core import ExactState
        assert bind.effect.items[0].pre == ExactState("raw")
        assert bind.effect.items[0].post == ExactState("named")
        assert listen.effect.items[0].pre == ExactState("named")

    def test_irp_service_calls_consume(self, ctx):
        for name in ("IoCompleteRequest", "IoCallDriver", "IoFreeIrp"):
            sig = ctx.function(name)
            assert sig.effect.items[0].mode == "consume", name

    def test_mark_pending_keeps(self, ctx):
        sig = ctx.function("IoMarkIrpPending")
        assert sig.effect.items[0].mode == "keep"

    def test_event_effects(self, ctx):
        assert ctx.function("KeSignalEvent").effect.items[0].mode == \
            "consume"
        assert ctx.function("KeWaitForEvent").effect.items[0].mode == \
            "produce"

    def test_spinlock_effects_touch_irql(self, ctx):
        acquire = ctx.function("KeAcquireSpinLock")
        modes = {i.key: i.mode for i in acquire.effect.items
                 if isinstance(i.key, str)}
        assert modes.get("K") == "produce"
        assert modes.get("IRQL") == "keep"

    def test_transaction_lifecycle_effects(self, ctx):
        begin = ctx.function("begin", module="Tx")
        commit = ctx.function("commit", module="Tx")
        from repro.core import CPacked, ExactState
        assert isinstance(begin.ret, CPacked)
        assert begin.ret.state == ExactState("active")
        assert commit.effect.items[0].mode == "consume"

    def test_irql_stateset_complete(self, ctx):
        sset = ctx.statespace.sets["IRQ_LEVEL"]
        assert sset.states == ("PASSIVE_LEVEL", "APC_LEVEL",
                               "DISPATCH_LEVEL", "DIRQL")
        assert sset.bottom() == "PASSIVE_LEVEL"
