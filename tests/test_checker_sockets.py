"""Checker tests: the socket protocol (paper §2.3, Figure 3)."""

from repro.diagnostics import Code

from conftest import assert_ok, assert_rejected, codes

ADDR = 'sockaddr addr = new sockaddr { host = "h"; port = 1; };'


class TestHappyPath:
    def test_full_server_setup(self):
        assert_ok(f"""
void server() {{
    {ADDR}
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    Socket.bind(s, addr);
    Socket.listen(s, 8);
    tracked(N) sock conn = Socket.accept(s, addr);
    byte[] buf = [0, 0];
    int n = Socket.receive(conn, buf);
    Socket.send(conn, buf);
    Socket.close(conn);
    Socket.close(s);
}}
""")

    def test_client_connect(self):
        assert_ok(f"""
void client() {{
    {ADDR}
    tracked(C) sock c = Socket.socket('INET, 'STREAM, 0);
    Socket.connect(c, addr);
    byte[] buf = [1, 2, 3];
    Socket.send(c, buf);
    Socket.close(c);
}}
""")

    def test_close_at_any_state(self):
        # close's effect [-S] is state-polymorphic.
        assert_ok(f"""
void f() {{
    {ADDR}
    tracked(A) sock raw_one = Socket.socket('UNIX, 'DGRAM, 0);
    Socket.close(raw_one);
    tracked(B) sock named_one = Socket.socket('UNIX, 'DGRAM, 0);
    Socket.bind(named_one, addr);
    Socket.close(named_one);
}}
""")


class TestProtocolViolations:
    def test_listen_before_bind(self):
        assert_rejected("""
void f() {
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    Socket.listen(s, 8);
    Socket.close(s);
}
""", Code.KEY_WRONG_STATE)

    def test_receive_on_listening_socket(self):
        assert_rejected(f"""
void f() {{
    {ADDR}
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    Socket.bind(s, addr);
    Socket.listen(s, 8);
    byte[] buf = [0];
    Socket.receive(s, buf);
    Socket.close(s);
}}
""", Code.KEY_WRONG_STATE)

    def test_receive_on_raw_socket(self):
        assert_rejected("""
void f() {
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    byte[] buf = [0];
    Socket.receive(s, buf);
    Socket.close(s);
}
""", Code.KEY_WRONG_STATE)

    def test_bind_twice(self):
        assert_rejected(f"""
void f() {{
    {ADDR}
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    Socket.bind(s, addr);
    Socket.bind(s, addr);
    Socket.close(s);
}}
""", Code.KEY_WRONG_STATE)

    def test_socket_leak(self):
        assert_rejected("""
void f() {
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
}
""", Code.KEY_LEAKED)

    def test_accepted_connection_leak(self):
        assert_rejected(f"""
void f() {{
    {ADDR}
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    Socket.bind(s, addr);
    Socket.listen(s, 8);
    tracked(N) sock conn = Socket.accept(s, addr);
    Socket.close(s);
}}
""", Code.KEY_LEAKED)

    def test_use_after_close(self):
        assert_rejected("""
void f() {
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    Socket.close(s);
    Socket.listen(s, 8);
}
""", Code.KEY_CONSUMED_MISSING)


class TestFailureAwareBind:
    def test_unchecked_status_rejected(self):
        # Paper §2.3: forgetting to check bind's status means the key
        # is gone; the following listen cannot typecheck.
        result = codes(f"""
void f() {{
    {ADDR}
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    Socket.bind_checked(s, addr);
    Socket.listen(s, 8);
    Socket.close(s);
}}
""")
        assert Code.KEY_CONSUMED_MISSING in result or \
            Code.KEY_NOT_HELD in result

    def test_checked_status_accepted(self):
        assert_ok(f"""
void f() {{
    {ADDR}
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    switch (Socket.bind_checked(s, addr)) {{
        case 'Ok:
            Socket.listen(s, 8);
            Socket.close(s);
        case 'Error(code):
            Socket.close(s);
    }}
}}
""")

    def test_error_case_can_retry_bind(self):
        # In the 'Error case the key is back in state "raw" — a second
        # bind attempt is legal (paper: "can for example try another
        # bind operation").
        assert_ok(f"""
void f() {{
    {ADDR}
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    switch (Socket.bind_checked(s, addr)) {{
        case 'Ok:
            Socket.close(s);
        case 'Error(code):
            Socket.bind(s, addr);
            Socket.close(s);
    }}
}}
""")

    def test_error_case_cannot_listen(self):
        assert_rejected(f"""
void f() {{
    {ADDR}
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    switch (Socket.bind_checked(s, addr)) {{
        case 'Ok:
            Socket.close(s);
        case 'Error(code):
            Socket.listen(s, 8);
            Socket.close(s);
    }}
}}
""", Code.KEY_WRONG_STATE)

    def test_ok_case_key_is_named_not_ready(self):
        assert_rejected(f"""
void f() {{
    {ADDR}
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    switch (Socket.bind_checked(s, addr)) {{
        case 'Ok:
            byte[] buf = [0];
            Socket.receive(s, buf);
            Socket.close(s);
        case 'Error(code):
            Socket.close(s);
    }}
}}
""", Code.KEY_WRONG_STATE)


class TestHelpers:
    def test_helper_requiring_listening_state(self):
        assert_ok(f"""
int serve(tracked(S) sock srv, sockaddr a) [S@listening] {{
    tracked(N) sock conn = Socket.accept(srv, a);
    Socket.close(conn);
    return 0;
}}
void f() {{
    {ADDR}
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    Socket.bind(s, addr);
    Socket.listen(s, 8);
    int n = serve(s, addr);
    Socket.close(s);
}}
""")

    def test_helper_called_in_wrong_state(self):
        assert_rejected(f"""
int serve(tracked(S) sock srv, sockaddr a) [S@listening] {{
    tracked(N) sock conn = Socket.accept(srv, a);
    Socket.close(conn);
    return 0;
}}
void f() {{
    {ADDR}
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    Socket.bind(s, addr);
    int n = serve(s, addr);
    Socket.close(s);
}}
""", Code.KEY_WRONG_STATE)

    def test_state_transition_helper(self):
        assert_ok(f"""
void setup(tracked(S) sock s, sockaddr a) [S@raw->listening] {{
    Socket.bind(s, a);
    Socket.listen(s, 4);
}}
void f() {{
    {ADDR}
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    setup(s, addr);
    tracked(N) sock conn = Socket.accept(s, addr);
    Socket.close(conn);
    Socket.close(s);
}}
""")

    def test_transition_helper_wrong_final_state(self):
        assert_rejected("""
void setup(tracked(S) sock s, sockaddr a) [S@raw->listening] {
    Socket.bind(s, a);
}
""", Code.POSTCONDITION_MISMATCH)
