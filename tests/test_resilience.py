"""Chaos tests for the resilient checking pipeline.

Every recovery path promised by the supervision layer is driven here
through the deterministic fault harness (:mod:`repro.pipeline.faults`):

* a worker SIGKILLed mid-batch is respawned and the batch retried —
  the run completes without serial fallback and with diagnostics
  byte-identical to a serial check;
* a hung worker is killed by the cost-model watchdog within its batch
  deadline;
* a function that reliably kills its worker is cornered by bisection
  and either exonerated by a parent-side re-check or reported as a
  structured ``V0500`` diagnostic;
* when the pool truly cannot be saved, the serial fallback reuses the
  results of every batch that did complete;
* a corrupt on-disk summary cache is quarantined (original preserved
  under a unique ``*.corrupt.<pid>.<seq>`` name, bounded retention)
  and transparently rebuilt;
* no file descriptors leak across crash/respawn cycles, and
  ``WorkerPool.close`` is idempotent and survives already-dead
  children.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import time

import pytest

from repro import check_source
from repro.analysis import synthesize_program
from repro.pipeline import CheckSession, FaultPlan, fork_available
from repro.pipeline.faults import FaultError

UNITS = ["region"]

needs_fork = pytest.mark.skipif(not fork_available(), reason="needs os.fork")


def _corpus(n=24, seed=3, error_rate=0.3):
    source = synthesize_program(n, seed=seed, error_rate=error_rate)
    return source, check_source(source, units=UNITS).render()


def _chaos_session(plan, jobs=2, **kwargs):
    return CheckSession(units=UNITS, jobs=jobs, break_even_seconds=0.0,
                        fault_plan=plan, **kwargs)


def _open_fds():
    return set(os.listdir("/proc/self/fd")) if os.path.isdir(
        "/proc/self/fd") else None


# ---------------------------------------------------------------------------
# The fault plan itself (pure parsing/determinism; no fork needed)
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_parse_kinds_and_ranges(self):
        plan = FaultPlan.parse("crash@0,hang@2,eof@1,garbage@3-5")
        assert plan.crash == {0}
        assert plan.hang == {2}
        assert plan.eof == {1}
        assert plan.garbage == {3, 4, 5}

    def test_bare_kind_means_dispatch_zero(self):
        assert FaultPlan.parse("crash").crash == {0}

    def test_poison_flip_cache_and_seed(self):
        plan = FaultPlan.parse("poison:f,poison:M.g,flip-cache@2,seed=7")
        assert plan.poison == {"f", "M.g"}
        assert plan.poisoned("M.g") and not plan.poisoned("h")
        assert plan.seed == 7
        assert plan.take_cache_flip() and plan.take_cache_flip()
        assert not plan.take_cache_flip()      # budget of 2 exhausted

    def test_dispatch_fault_precedence_is_stable(self):
        plan = FaultPlan.parse("crash@4,hang@4")
        assert plan.dispatch_fault(4) == "crash"
        assert plan.dispatch_fault(5) is None

    def test_describe_parse_round_trip(self):
        spec = "crash@1,hang@2,poison:f,seed=9"
        assert FaultPlan.parse(FaultPlan.parse(spec).describe()).describe() \
            == FaultPlan.parse(spec).describe()

    @pytest.mark.parametrize("bad", ["explode@1", "crash@x", "crash@3-1",
                                     "poison:", "seed=maybe",
                                     "flip-cache@many"])
    def test_bad_specs_raise_fault_error(self, bad):
        with pytest.raises(FaultError):
            FaultPlan.parse(bad)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.parse("")
        assert FaultPlan.parse("crash@0")

    def test_flip_file_byte_is_seeded_and_minimal(self, tmp_path):
        path = str(tmp_path / "blob")
        with open(path, "wb") as handle:
            handle.write(bytes(range(256)) * 4)
        pristine = bytes(range(256)) * 4
        offset = FaultPlan(seed=11).flip_file_byte(path)
        with open(path, "rb") as handle:
            data = handle.read()
        # exactly one byte changed, at the seeded offset
        diffs = [i for i in range(len(data)) if data[i] != pristine[i]]
        assert diffs == [offset]
        # a fresh plan with the same seed picks the same offset, so the
        # second flip restores the file bit-for-bit
        assert FaultPlan(seed=11).flip_file_byte(path) == offset
        with open(path, "rb") as handle:
            assert handle.read() == pristine


# ---------------------------------------------------------------------------
# Crash recovery: respawn + retry, no serial fallback
# ---------------------------------------------------------------------------

@needs_fork
class TestCrashRecovery:
    @pytest.mark.parametrize("kind", ["crash", "eof", "garbage"])
    def test_single_fault_recovers_byte_identically(self, kind):
        source, expected = _corpus()
        with _chaos_session(FaultPlan.parse(f"{kind}@0")) as session:
            rendered = session.check(source).render()
        assert rendered == expected
        assert session.stats.serial_fallbacks == 0
        assert session.stats.respawns == 1
        assert session.stats.retries == 1
        counts = session.telemetry.events.counts()
        assert counts.get("worker_respawn") == 1
        assert counts.get("batch_retry") == 1

    def test_retry_travels_under_a_fresh_dispatch_id(self):
        # crash@0 must fire exactly once: the retried batch is stamped
        # with a new dispatch id and completes.
        source, expected = _corpus(n=8, seed=1)
        with _chaos_session(FaultPlan.parse("crash@0"), jobs=2) as session:
            assert session.check(source).render() == expected
        assert session.stats.respawns == 1

    def test_acceptance_scenario(self):
        # The ISSUE's bar: 100+ functions, --jobs 4, two workers killed
        # and one hung — completes with no serial fallback and
        # byte-identical diagnostics.
        source, expected = _corpus(n=120, seed=7, error_rate=0.2)
        plan = FaultPlan.parse("crash@0,crash@1,hang@2")
        with _chaos_session(plan, jobs=4, batch_timeout=1.0) as session:
            rendered = session.check(source).render()
        assert rendered == expected
        assert session.stats.serial_fallbacks == 0
        assert session.stats.respawns == 3
        assert session.stats.timeouts == 1
        assert session.stats.retries == 3

    def test_no_fd_leak_across_crash_respawn_cycles(self):
        if _open_fds() is None:
            pytest.skip("needs /proc")
        source, expected = _corpus(n=10, seed=2)
        with _chaos_session(None) as warmup:     # import/parse caches warm
            warmup.check(source)
        before = _open_fds()
        for trial in range(3):
            with _chaos_session(FaultPlan.parse("crash@0,eof@2")) as session:
                assert session.check(source).render() == expected
        assert _open_fds() == before


# ---------------------------------------------------------------------------
# The hang watchdog
# ---------------------------------------------------------------------------

@needs_fork
class TestWatchdog:
    def test_hung_worker_killed_within_deadline(self):
        source, expected = _corpus(n=16, seed=4)
        started = time.monotonic()
        with _chaos_session(FaultPlan.parse("hang@0"),
                            batch_timeout=1.0) as session:
            rendered = session.check(source).render()
        elapsed = time.monotonic() - started
        assert rendered == expected
        assert session.stats.timeouts == 1
        assert session.stats.serial_fallbacks == 0
        # the injected hang sleeps for minutes; recovery must not.
        assert elapsed < 30.0
        (event,) = session.telemetry.events.by_kind("worker_timeout")
        assert event.fields["deadline_seconds"] >= 1.0
        assert event.fields["functions"]


# ---------------------------------------------------------------------------
# Poison-batch isolation
# ---------------------------------------------------------------------------

@needs_fork
class TestPoisonIsolation:
    def test_worker_local_poison_is_bisected_and_exonerated(self):
        # worker_7 kills any worker that starts checking it; the parent
        # corners it by bisection, re-checks it locally, and the run
        # still matches serial byte-for-byte.
        source, expected = _corpus()
        with _chaos_session(FaultPlan.parse("poison:worker_7")) as session:
            rendered = session.check(source).render()
        assert rendered == expected
        assert session.stats.serial_fallbacks == 0
        assert session.stats.bisections >= 1
        (event,) = session.telemetry.events.by_kind("poison_recovered")
        assert event.fields["function"] == "worker_7"

    def test_genuine_poison_becomes_a_structured_diagnostic(self,
                                                            monkeypatch):
        import repro.pipeline.workers as workers

        real = workers.check_function_diagnostics

        def boom(ctx, qual, fundef, **kwargs):
            if qual == "worker_3":
                raise RuntimeError("checker bug on worker_3")
            return real(ctx, qual, fundef, **kwargs)

        monkeypatch.setattr(workers, "check_function_diagnostics", boom)
        # a clean corpus: the isolation diagnostic must be the *only*
        # error in the report — every other function checked normally.
        source, expected = _corpus(error_rate=0.0)
        assert "error [" not in expected
        with _chaos_session(None) as session:
            rendered = session.check(source).render()
        assert session.stats.serial_fallbacks == 0
        assert session.stats.poisoned == 1
        error_lines = [l for l in rendered.splitlines() if "error [" in l]
        assert len(error_lines) == 1
        assert "V0500" in error_lines[0]
        assert "worker_3" in error_lines[0]
        (event,) = session.telemetry.events.by_kind("poison_function")
        assert event.fields["function"] == "worker_3"
        assert "checker bug on worker_3" in event.fields["traceback"]


# ---------------------------------------------------------------------------
# Serial fallback reuses completed batches
# ---------------------------------------------------------------------------

@needs_fork
class TestPartialReuse:
    def test_fallback_keeps_results_from_completed_batches(self, capfd):
        # Dispatch 1's batch completes; every other dispatch crashes
        # until the respawn budget is gone.  The fallback must only
        # re-check what the pool never finished.
        source, expected = _corpus()
        plan = FaultPlan.parse("crash@0,crash@2-40")
        with _chaos_session(plan) as session:
            rendered = session.check(source).render()
        assert rendered == expected
        assert session.stats.serial_fallbacks == 1
        assert session.stats.fallback_reused > 0
        (event,) = session.telemetry.events.by_kind("serial_fallback")
        assert event.fields["reused"] == session.stats.fallback_reused
        assert event.fields["rechecked"] > 0
        assert event.fields["reused"] + event.fields["rechecked"] == 24
        assert "falling back to serial" in capfd.readouterr().err


# ---------------------------------------------------------------------------
# Cache corruption: quarantine and rebuild
# ---------------------------------------------------------------------------

class TestCacheResilience:
    def _cache_path(self, tmp_path):
        return os.path.join(str(tmp_path), "summaries.pkl")

    def _seed_cache(self, tmp_path, source):
        with CheckSession(units=UNITS, cache_dir=str(tmp_path)) as session:
            session.check(source)
        path = self._cache_path(tmp_path)
        assert os.path.exists(path)
        return path

    def test_bit_flip_is_quarantined_and_rebuilt(self, tmp_path, capfd):
        source, expected = _corpus(n=10, seed=5)
        path = self._seed_cache(tmp_path, source)
        with open(path, "rb") as handle:
            corrupt = bytearray(handle.read())
        corrupt[len(corrupt) // 2] ^= 0x40
        with open(path, "wb") as handle:
            handle.write(bytes(corrupt))

        with CheckSession(units=UNITS, cache_dir=str(tmp_path)) as session:
            rendered = session.check(source).render()
        assert rendered == expected
        assert session.stats.cache_quarantines == 1
        (event,) = session.telemetry.events.by_kind("cache_corrupt")
        assert event.fields["path"] == path
        assert event.fields["error"]
        # quarantine names are unique (``.corrupt.<pid>.<seq>``) so a
        # later corruption cannot clobber this post-mortem
        quarantined = event.fields["quarantined"]
        assert quarantined.startswith(path + ".corrupt.")
        # the corrupt original is preserved for post-mortems…
        with open(quarantined, "rb") as handle:
            assert handle.read() == bytes(corrupt)
        # …and the rebuilt cache replays cleanly on the next run.
        with CheckSession(units=UNITS, cache_dir=str(tmp_path)) as reader:
            reader.check(source)
        assert reader.stats.cache_quarantines == 0
        assert reader.stats.functions_checked == 0
        assert "rebuilding cold" in capfd.readouterr().err

    def test_checksum_catches_payload_corruption(self, tmp_path, capfd):
        # A flip inside the pickled body keeps the envelope loadable —
        # only the content checksum can catch it.
        source, _ = _corpus(n=6, seed=8)
        path = self._seed_cache(tmp_path, source)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        body = bytearray(payload["data"])
        body[len(body) // 2] ^= 0x01
        payload["data"] = bytes(body)
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)

        with CheckSession(units=UNITS, cache_dir=str(tmp_path)) as session:
            session.check(source)
        (event,) = session.telemetry.events.by_kind("cache_corrupt")
        assert "checksum" in event.fields["error"]
        capfd.readouterr()

    def test_flip_cache_fault_round_trips(self, tmp_path, capfd):
        source, expected = _corpus(n=8, seed=9)
        plan = FaultPlan.parse("flip-cache,seed=1")
        with CheckSession(units=UNITS, cache_dir=str(tmp_path),
                          fault_plan=plan) as writer:
            writer.check(source)
        (event,) = writer.telemetry.events.by_kind("fault_injected")
        assert event.fields["fault"] == "flip-cache"
        with CheckSession(units=UNITS, cache_dir=str(tmp_path)) as reader:
            assert reader.check(source).render() == expected
        assert reader.stats.cache_quarantines == 1
        capfd.readouterr()

    def test_unknown_version_reported_but_left_in_place(self, tmp_path):
        source, _ = _corpus(n=4, seed=10)
        path = self._seed_cache(tmp_path, source)
        with open(path, "wb") as handle:
            pickle.dump({"version": 99, "data": b""}, handle)
        with CheckSession(units=UNITS, cache_dir=str(tmp_path)) as session:
            session.check(source)
        (event,) = session.telemetry.events.by_kind("cache_incompatible")
        assert event.fields["version"] == 99
        assert not [name for name in os.listdir(os.path.dirname(path))
                    if ".corrupt" in name]

    def test_legacy_version2_payload_still_loads(self, tmp_path):
        source, _ = _corpus(n=5, seed=11)
        path = self._seed_cache(tmp_path, source)
        with open(path, "rb") as handle:
            inner = pickle.loads(pickle.load(handle)["data"])
        with open(path, "wb") as handle:
            pickle.dump({"version": 2, "summaries": inner["summaries"],
                         "costs": inner.get("costs", {})}, handle)
        with CheckSession(units=UNITS, cache_dir=str(tmp_path)) as reader:
            reader.check(source)
        assert reader.stats.functions_checked == 0
        assert reader.stats.cache_quarantines == 0

    def test_save_leaves_no_temp_files(self, tmp_path):
        source, _ = _corpus(n=4, seed=12)
        self._seed_cache(tmp_path, source)
        leftovers = [name for name in os.listdir(str(tmp_path))
                     if ".tmp" in name]
        assert leftovers == []


# ---------------------------------------------------------------------------
# Pool shutdown hygiene
# ---------------------------------------------------------------------------

@needs_fork
class TestPoolShutdown:
    def test_close_is_idempotent(self):
        source, _ = _corpus(n=6, seed=13)
        session = CheckSession(units=UNITS, jobs=2, break_even_seconds=0.0)
        session.check(source)
        pool = session._pool
        assert pool is not None
        pool.close()
        pool.close()                               # second close: no-op
        session.close()                            # session close too

    def test_close_survives_already_dead_children(self):
        source, _ = _corpus(n=6, seed=14)
        session = CheckSession(units=UNITS, jobs=2, break_even_seconds=0.0)
        session.check(source)
        pool = session._pool
        for worker in list(pool._workers):
            os.kill(worker.pid, signal.SIGKILL)
        time.sleep(0.05)
        pool.close()                               # must not raise
        session.close()

    def test_session_usable_after_close(self):
        source, expected = _corpus(n=6, seed=15)
        with CheckSession(units=UNITS, jobs=2,
                          break_even_seconds=0.0) as session:
            assert session.check(source).render() == expected
            session.close()
            assert session.check(source).render() == expected


# ---------------------------------------------------------------------------
# The CLI surface (--inject-faults / --batch-timeout / stats rows)
# ---------------------------------------------------------------------------

@needs_fork
class TestCli:
    def test_check_with_injected_faults_exits_cleanly(self, tmp_path):
        source, expected = _corpus(n=20, seed=16, error_rate=0.0)
        target = tmp_path / "prog.vlt"
        target.write_text(source)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "check", str(target),
             "--jobs", "2", "--break-even", "0", "--batch-timeout", "1",
             "--inject-faults", "crash@0", "--profile"],
            capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(os.path.dirname(__file__),
                                            os.pardir, "src")})
        assert proc.returncode == 0, proc.stderr
        assert "worker respawns" in proc.stderr + proc.stdout

    def test_bad_fault_spec_is_a_usage_error(self, tmp_path):
        target = tmp_path / "prog.vlt"
        target.write_text("int main() { return 0; }\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "check", str(target),
             "--inject-faults", "explode@1"],
            capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(os.path.dirname(__file__),
                                            os.pardir, "src")})
        assert proc.returncode != 0
        assert "bad fault spec" in proc.stderr
