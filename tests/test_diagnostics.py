"""Diagnostics, reporter and API-surface tests."""

import pytest

from repro import (CheckError, Code, check_source, check_source_strict,
                   error_codes, load_context, parse)
from repro.diagnostics import (Diagnostic, Pos, Reporter, Severity, Span)


class TestSpan:
    def test_point(self):
        span = Span.point(3, 7, "f.vlt")
        assert span.start.line == 3
        assert str(span) == "f.vlt:3:7"

    def test_merge(self):
        a = Span(Pos(1, 1), Pos(1, 5), "f")
        b = Span(Pos(2, 1), Pos(2, 9), "f")
        merged = a.merge(b)
        assert merged.start.line == 1
        assert merged.end.line == 2

    def test_merge_with_unknown(self):
        a = Span.unknown()
        b = Span.point(4, 2)
        assert a.merge(b) is b
        assert b.merge(a) is b


class TestReporter:
    def test_collects_and_renders(self):
        source = "line one\nbad line here\n"
        reporter = Reporter(source, "t.vlt")
        reporter.error(Code.TYPE_MISMATCH, "something is off",
                       Span.point(2, 5, "t.vlt"))
        text = reporter.render()
        assert "V0200" in text
        assert "bad line here" in text
        assert "^" in text

    def test_warning_does_not_fail(self):
        reporter = Reporter()
        reporter.warning(Code.TYPE_MISMATCH, "meh", Span.unknown())
        assert reporter.ok
        assert len(reporter) == 1

    def test_notes_rendered(self):
        reporter = Reporter()
        reporter.error(Code.JOIN_MISMATCH, "sets disagree", Span.unknown(),
                       notes=["one path holds {}", "the other holds {K}"])
        assert "note:" in reporter.render()

    def test_raise_if_errors(self):
        reporter = Reporter()
        reporter.error(Code.KEY_LEAKED, "leak", Span.unknown())
        with pytest.raises(CheckError) as exc:
            reporter.raise_if_errors()
        assert exc.value.has(Code.KEY_LEAKED)

    def test_extend(self):
        a, b = Reporter(), Reporter()
        b.error(Code.KEY_LEAKED, "leak", Span.unknown())
        a.extend(b)
        assert a.has(Code.KEY_LEAKED)


class TestErrorSpans:
    def test_dangling_points_at_the_access(self):
        report = check_source("""
struct point { int x; int y; }
void f() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=1; y=2;};
    Region.delete(rgn);
    pt.x++;
}
""")
        diag = report.errors[0]
        assert diag.span.start.line == 7

    def test_leak_points_at_the_exit(self):
        report = check_source("""
void f() {
    tracked(R) region rgn = Region.create();
}
""")
        assert report.errors[0].code is Code.KEY_LEAKED

    def test_message_names_the_key(self):
        report = check_source("""
void f() {
    tracked(R) region rgn = Region.create();
}
""")
        assert "R" in report.errors[0].message


class TestApiSurface:
    def test_parse_returns_program(self):
        program = parse("struct s { int a; }")
        assert len(program.decls) == 1

    def test_error_codes_helper(self):
        codes = error_codes("void f() { tracked(R) region r = "
                            "Region.create(); }")
        assert Code.KEY_LEAKED in codes

    def test_check_source_strict_raises(self):
        with pytest.raises(CheckError):
            check_source_strict(
                "void f() { tracked(R) region r = Region.create(); }")

    def test_check_source_strict_passes_clean(self):
        check_source_strict("void f() { }")

    def test_load_context_exposes_tables(self):
        ctx, reporter = load_context("struct s { int a; }")
        assert reporter.ok
        assert ctx.struct("s") is not None

    def test_units_selection(self):
        # With only the region unit, socket names are unknown.
        report = check_source(
            "void f() { tracked(S) sock s = Socket.socket('UNIX, "
            "'STREAM, 0); Socket.close(s); }",
            units=["region"])
        assert not report.ok


class TestPaperNotedLimitations:
    def test_reentrant_locks_not_modelled(self):
        # Paper §4.2: "This approach however is inadequate to model
        # reentrant locks."  Re-acquiring a held lock is always a
        # duplication error, even where a reentrant lock would allow it.
        report = check_source("""
struct counter { int n; }
void outer() [IRQL @ PASSIVE_LEVEL] {
    tracked(K) counter c = new tracked counter { n = 0; };
    KSPIN_LOCK<K> lock = KeInitializeSpinLock(c);
    KIRQL<a> s1 = KeAcquireSpinLock(lock);
    KIRQL<b> s2 = KeAcquireSpinLock(lock);   // reentrant intent
    KeReleaseSpinLock(lock, s2);
    KeReleaseSpinLock(lock, s1);
}
""")
        assert report.has(Code.KEY_DUPLICATED)

    def test_figure5_safe_but_rejected(self):
        # §2.4: type agreement at join points rejects some safe code.
        report = check_source("""
struct point { int x; int y; }
void main() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=4; y=2;};
    if (pt.x > 0) {
        Region.delete(rgn);
    } else {
        pt.y = pt.x;
    }
    if (pt.x <= 0) {
        Region.delete(rgn);
    }
}
""")
        assert report.has(Code.JOIN_MISMATCH)

    def test_anonymization_loses_precision(self):
        # §2.4: collections anonymize keys by design.
        report = check_source("""
variant bag [ 'Empty | 'Full(tracked region) ];
void f() {
    tracked(R) region rgn = Region.create();
    int before = Region.size(rgn);
    tracked bag b = 'Full(rgn);
    switch (b) {
        case 'Empty:
            int x = 0;
        case 'Full(r):
            int after = Region.size(rgn);   // old name: key is gone
            Region.delete(r);
    }
}
""")
        assert report.has(Code.KEY_CONSUMED_MISSING)
