"""Shared helpers for the test suite."""

from __future__ import annotations

from typing import List, Optional, Sequence

import pytest

from repro import check_source, load_context
from repro.diagnostics import Code, Reporter
from repro.stdlib.hostimpl import Host, create_host, make_interpreter

POINT = "struct point { int x; int y; }\n"


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate the pinned checker outputs under tests/golden/ "
             "instead of asserting against them")


def check(source: str, units: Optional[Sequence[str]] = None) -> Reporter:
    return check_source(source, units=units)


def codes(source: str, units: Optional[Sequence[str]] = None) -> List[Code]:
    return check(source, units).codes()


def assert_ok(source: str, units: Optional[Sequence[str]] = None) -> None:
    report = check(source, units)
    assert report.ok, "expected clean check, got:\n" + report.render()


def assert_rejected(source: str, code: Code,
                    units: Optional[Sequence[str]] = None) -> None:
    report = check(source, units)
    assert not report.ok, "expected rejection, but the program checked"
    assert report.has(code), (
        f"expected {code.value}, got "
        f"{[c.value for c in report.codes()]}:\n{report.render()}")


def run_program(source: str, entry: str = "main"):
    """Check-free execution helper: returns (result, host)."""
    ctx, reporter = load_context(source)
    assert reporter.ok, reporter.render()
    host = create_host()
    interp = make_interpreter(ctx, host)
    return interp.call(entry), host


@pytest.fixture
def host() -> Host:
    return create_host()
