"""Shared helpers for the test suite."""

from __future__ import annotations

import os
import socket as socket_mod
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import List, Optional, Sequence

import pytest

from repro import check_source, load_context
from repro.diagnostics import Code, Reporter
from repro.stdlib.hostimpl import Host, create_host, make_interpreter

REPO = Path(__file__).resolve().parent.parent

#: skip marker for anything that needs AF_UNIX sockets.
needs_unix = pytest.mark.skipif(
    not hasattr(socket_mod, "AF_UNIX"), reason="needs AF_UNIX sockets")

POINT = "struct point { int x; int y; }\n"


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate the pinned checker outputs under tests/golden/ "
             "instead of asserting against them")


def check(source: str, units: Optional[Sequence[str]] = None) -> Reporter:
    return check_source(source, units=units)


def codes(source: str, units: Optional[Sequence[str]] = None) -> List[Code]:
    return check(source, units).codes()


def assert_ok(source: str, units: Optional[Sequence[str]] = None) -> None:
    report = check(source, units)
    assert report.ok, "expected clean check, got:\n" + report.render()


def assert_rejected(source: str, code: Code,
                    units: Optional[Sequence[str]] = None) -> None:
    report = check(source, units)
    assert not report.ok, "expected rejection, but the program checked"
    assert report.has(code), (
        f"expected {code.value}, got "
        f"{[c.value for c in report.codes()]}:\n{report.render()}")


def run_program(source: str, entry: str = "main"):
    """Check-free execution helper: returns (result, host)."""
    ctx, reporter = load_context(source)
    assert reporter.ok, reporter.render()
    host = create_host()
    interp = make_interpreter(ctx, host)
    return interp.call(entry), host


@pytest.fixture
def host() -> Host:
    return create_host()


# ---------------------------------------------------------------------------
# Daemon helpers, shared by test_server, test_golden and test_fuzz
# ---------------------------------------------------------------------------

class ServerHandle:
    """An in-thread ``CheckServer`` plus its serving thread."""

    def __init__(self, server, thread: threading.Thread):
        self.server = server
        self.thread = thread
        self.socket_path = server.socket_path

    def stop(self):
        self.server.request_stop()
        self.thread.join(10)
        self.server.close()


def start_server(tmp_path, **kwargs) -> ServerHandle:
    """Bind a ``CheckServer`` on a socket under ``tmp_path`` and serve
    it from a daemon thread.  Callers own the ``.stop()``."""
    from repro.obs import Telemetry
    from repro.server import CheckServer

    sock = str(Path(tmp_path) / "daemon.sock")
    kwargs.setdefault("telemetry", Telemetry(metrics=True))
    server = CheckServer(socket_path=sock, **kwargs)
    server.bind()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return ServerHandle(server, thread)


@pytest.fixture(scope="module")
def daemon_socket(tmp_path_factory):
    """A module-lifetime in-thread daemon; yields its socket path."""
    handle = start_server(tmp_path_factory.mktemp("shared-daemon"))
    try:
        yield handle.socket_path
    finally:
        handle.stop()


def spawn_daemon(sock: str, *extra: str, test_ops: bool = False,
                 jobs: str = "1") -> subprocess.Popen:
    """A real ``vaultc serve`` subprocess, pinged until ready."""
    from repro.server import DaemonClient, DaemonUnavailable

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    if test_ops:
        env["VAULTC_SERVER_TEST_OPS"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--socket", sock,
         "--jobs", jobs, *extra],
        cwd=str(REPO), env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 20
    while time.monotonic() < deadline:
        try:
            with DaemonClient(sock) as client:
                client.ping()
            return proc
        except DaemonUnavailable:
            if proc.poll() is not None:
                raise AssertionError(
                    f"daemon exited early with rc={proc.returncode}")
            time.sleep(0.05)
    proc.kill()
    raise AssertionError("daemon never became ready")


def vaultc(args, cwd=REPO) -> subprocess.CompletedProcess:
    """Run the ``vaultc`` CLI in a subprocess and capture its output."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=str(cwd), env=env, capture_output=True, text=True)


class ScriptedDaemon:
    """A minimal fake daemon: each incoming request consumes the next
    script step.  Steps: a dict (reply it), ``"close"`` (EOF without
    replying), ``"hang"`` (hold the connection open, never reply)."""

    def __init__(self, path, script):
        from repro.server import recv_frame, send_frame, ProtocolError
        self._recv_frame = recv_frame
        self._send_frame = send_frame
        self._protocol_error = ProtocolError
        self.path = path
        self.script = list(script)
        self._listener = socket_mod.socket(socket_mod.AF_UNIX,
                                           socket_mod.SOCK_STREAM)
        self._listener.bind(path)
        self._listener.listen(8)
        self.requests = []
        self._threads = []
        self._stop = False
        self._accept = threading.Thread(target=self._loop, daemon=True)
        self._accept.start()

    def _loop(self):
        while not self._stop:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            t = threading.Thread(target=self._serve, args=(sock,),
                                 daemon=True)
            self._threads.append(t)
            t.start()

    def _serve(self, sock):
        try:
            while True:
                frame = self._recv_frame(sock)
                if frame is None:
                    return
                self.requests.append(frame)
                step = self.script.pop(0) if self.script else "close"
                if step == "close":
                    return
                if step == "hang":
                    sock.settimeout(10)
                    try:
                        sock.recv(1)         # block until client quits
                    except OSError:
                        pass
                    return
                self._send_frame(sock, step)
        except (OSError, self._protocol_error):
            return
        finally:
            sock.close()

    def close(self):
        self._stop = True
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept.join(2)
