"""Checker edge cases: guarded fields, scoping, misc type errors."""

from repro.diagnostics import Code

from conftest import assert_ok, assert_rejected, codes


class TestGuardedStructFields:
    # The device-extension pattern from the floppy driver, distilled:
    # a struct field guarded by a key parameter of the struct.
    SETUP = """
struct stats { int hits; }
struct holder<key SK> {
    KSPIN_LOCK<SK> lock;
    SK:stats data;
}
struct token { int dummy; }
"""

    def test_field_access_requires_guard(self):
        assert_rejected(self.SETUP + """
void f(tracked(D) holder<SK> h) [D, IRQL @ (lvl <= DISPATCH_LEVEL)] {
    h.data.hits++;
}
""", Code.KEY_NOT_HELD)

    def test_field_access_under_lock(self):
        assert_ok(self.SETUP + """
void f(tracked(D) holder<SK> h) [D, IRQL @ (lvl <= DISPATCH_LEVEL)] {
    KIRQL<old> saved = KeAcquireSpinLock(h.lock);
    h.data.hits++;
    KeReleaseSpinLock(h.lock, saved);
}
""")

    def test_construction_binds_struct_key_param(self):
        assert_ok(self.SETUP + """
void build() [IRQL @ PASSIVE_LEVEL] {
    tracked(SK) token tok = new tracked token { dummy = 0; };
    KSPIN_LOCK<SK> lock = KeInitializeSpinLock(tok);
    tracked(D) holder<SK> h = new tracked holder<SK> {
        lock = lock;
        data = new stats { hits = 0; };
    };
    free(h);
}
""")

    def test_allocation_without_type_args_rejected(self):
        assert_rejected(self.SETUP + """
void build() {
    tracked(D) holder h = new tracked holder {};
    free(h);
}
""", Code.ARITY_MISMATCH)


class TestTrackedParamStates:
    def test_param_state_annotation_is_a_precondition(self):
        assert_rejected("""
void needs_ready(tracked(S@ready) sock s) [S] {
    byte[] buf = [0];
    Socket.receive(s, buf);
}
void f() {
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    needs_ready(s);
    Socket.close(s);
}
""", Code.KEY_WRONG_STATE)

    def test_param_state_annotation_satisfied(self):
        assert_ok("""
void needs_raw(tracked(S@raw) sock s) [S] {
}
void f() {
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    needs_raw(s);
    Socket.close(s);
}
""")


class TestScoping:
    def test_duplicate_variable_in_same_scope(self):
        assert_rejected("""
void f() {
    int x = 1;
    int x = 2;
}
""", Code.DUPLICATE_NAME)

    def test_block_scoped_variable_not_visible_after(self):
        assert_rejected("""
void f(bool c) {
    if (c) {
        int inner = 1;
    }
    int y = inner;
}
""", Code.UNDEFINED_NAME)

    def test_switch_binders_scoped_to_case(self):
        assert_rejected("""
variant opt [ 'None | 'Some(int) ];
int f(opt v) {
    switch (v) {
        case 'Some(n):
            int x = n;
        case 'None:
            int y = 0;
    }
    return n;
}
""", Code.UNDEFINED_NAME)

    def test_key_names_scoped_to_block(self):
        # R bound inside the if-block is not visible after it, and
        # the guarded declaration has no initializer key to bind from.
        assert_rejected("""
void f(bool c) {
    if (c) {
        tracked(R) region rgn = Region.create();
        Region.delete(rgn);
    }
    R:int x = 4;
}
""", Code.UNDEFINED_KEY)

    def test_guard_binder_aliases_initializer_key(self):
        # A guarded declaration may *name* the initializer's guard key:
        # the binder R becomes an alias for the region's key.
        assert_ok("""
struct point { int x; int y; }
void f() {
    tracked(Q) region rgn = Region.create();
    R:point p = new(rgn) point {x=1; y=2;};
    p.x++;
    Region.delete(rgn);
}
""")

    def test_break_outside_loop(self):
        report_codes = codes("void f() { break; }")
        assert report_codes

    def test_continue_outside_loop(self):
        report_codes = codes("void f() { continue; }")
        assert report_codes


class TestMiscTypeErrors:
    def test_condition_must_be_bool(self):
        assert_rejected("void f() { if (1) { int x = 0; } }",
                        Code.TYPE_MISMATCH)

    def test_while_condition_must_be_bool(self):
        assert_rejected('void f() { while ("yes") { int x = 0; } }',
                        Code.TYPE_MISMATCH)

    def test_arithmetic_on_strings_rejected(self):
        assert_rejected('int f() { return "a" * 3; }', Code.TYPE_MISMATCH)

    def test_string_concatenation_allowed(self):
        assert_ok('string f() { return "a" + "b"; }')

    def test_char_comparisons_allowed(self):
        assert_ok("""
bool is_digit(char c) {
    return c >= '0' && c <= '9';
}
""")

    def test_indexing_non_array(self):
        assert_rejected("int f(int x) { return x[0]; }", Code.TYPE_MISMATCH)

    def test_string_indexing_yields_char(self):
        assert_ok("""
char first(string s) {
    return s[0];
}
""")

    def test_field_on_non_struct(self):
        assert_rejected("int f(int x) { return x.y; }", Code.NOT_A_STRUCT)

    def test_unknown_field(self):
        assert_rejected("""
struct point { int x; int y; }
int f() {
    point p = new point { x = 1; y = 2; };
    return p.z;
}
""", Code.NO_SUCH_FIELD)

    def test_missing_field_initializer(self):
        assert_rejected("""
struct point { int x; int y; }
void f() {
    point p = new point { x = 1; };
}
""", Code.TYPE_MISMATCH)

    def test_unknown_init_field(self):
        assert_rejected("""
struct point { int x; int y; }
void f() {
    point p = new point { x = 1; y = 2; z = 3; };
}
""", Code.NO_SUCH_FIELD)

    def test_switch_on_non_variant(self):
        assert_rejected("""
void f(int x) {
    switch (x) {
        case 'One:
            int y = 1;
    }
}
""", Code.NOT_A_VARIANT)

    def test_assigning_to_rvalue(self):
        assert_rejected("void f() { 1 = 2; }", Code.NOT_ASSIGNABLE)

    def test_incdec_requires_numeric(self):
        assert_rejected('void f(string s) { s++; }', Code.TYPE_MISMATCH)

    def test_calling_a_non_function(self):
        assert_rejected("void f(int x) { x(); }", Code.NOT_A_FUNCTION)


class TestCustomProtocol:
    """A user-defined typestate protocol from scratch (§2.1's open/
    closed file states, as a library author would write them)."""

    HANDLE = """
type HANDLE;
tracked(@closed) HANDLE make();
void open_it(tracked(H) HANDLE h) [H@closed->open];
int read_it(tracked(H) HANDLE h) [H@open];
void close_it(tracked(H) HANDLE h) [H@open->closed];
void destroy(tracked(H) HANDLE h) [-H@closed];
"""

    def test_full_cycle(self):
        assert_ok(self.HANDLE + """
int use() {
    tracked(H) HANDLE h = make();
    open_it(h);
    int v = read_it(h);
    close_it(h);
    open_it(h);
    int w = read_it(h);
    close_it(h);
    destroy(h);
    return v + w;
}
""")

    def test_read_before_open(self):
        assert_rejected(self.HANDLE + """
int use() {
    tracked(H) HANDLE h = make();
    int v = read_it(h);
    destroy(h);
    return v;
}
""", Code.KEY_WRONG_STATE)

    def test_destroy_while_open(self):
        assert_rejected(self.HANDLE + """
void use() {
    tracked(H) HANDLE h = make();
    open_it(h);
    destroy(h);
}
""", Code.KEY_WRONG_STATE)

    def test_double_open(self):
        assert_rejected(self.HANDLE + """
void use() {
    tracked(H) HANDLE h = make();
    open_it(h);
    open_it(h);
    close_it(h);
    destroy(h);
}
""", Code.KEY_WRONG_STATE)

    def test_guarded_declaration_with_state(self):
        # The paper's ``K@open: FILE input`` form: the guard requires a
        # specific key state at every access.
        assert_rejected(self.HANDLE + """
void use() {
    tracked(H) HANDLE h = make();
    H@open:int cursor = 0;
    int v = cursor;
    destroy(h);
}
""", Code.KEY_WRONG_STATE)

    def test_guarded_declaration_with_state_satisfied(self):
        assert_ok(self.HANDLE + """
void use() {
    tracked(H) HANDLE h = make();
    open_it(h);
    H@open:int cursor = 0;
    int v = cursor;
    close_it(h);
    destroy(h);
}
""")


class TestNestedControlFlow:
    def test_nested_switches_with_keys(self):
        assert_ok("""
void f(tracked(A) FILE a, tracked(B) FILE b, bool ca, bool cb) [-A, -B] {
    tracked opt_key<A> fa;
    if (ca) { fclose(a); fa = 'NoKey; } else { fa = 'SomeKey{A}; }
    tracked opt_key<B> fb;
    if (cb) { fclose(b); fb = 'NoKey; } else { fb = 'SomeKey{B}; }
    switch (fa) {
        case 'NoKey:
            int x = 0;
        case 'SomeKey:
            fclose(a);
    }
    switch (fb) {
        case 'NoKey:
            int y = 0;
        case 'SomeKey:
            fclose(b);
    }
}
""")

    def test_loop_inside_switch(self):
        assert_ok("""
variant opt [ 'None | 'Some(int) ];
int f(opt v) {
    switch (v) {
        case 'None:
            return 0;
        case 'Some(n):
            int acc = 0;
            int i = 0;
            while (i < n) {
                acc += i;
                i++;
            }
            return acc;
    }
}
""")

    def test_switch_inside_loop_with_stable_keys(self):
        assert_ok("""
variant cmd [ 'Stop | 'Add(int) ];
int f(cmd c, int n) {
    int acc = 0;
    int i = 0;
    while (i < n) {
        switch (c) {
            case 'Stop:
                acc += 0;
            case 'Add(k):
                acc += k;
        }
        i++;
    }
    return acc;
}
""")

    def test_early_return_from_switch_case(self):
        assert_ok("""
int f() {
    sockaddr addr = new sockaddr { host = "h"; port = 1; };
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    switch (Socket.bind_checked(s, addr)) {
        case 'Error(code):
            Socket.close(s);
            return code;
        case 'Ok:
            Socket.listen(s, 1);
            Socket.close(s);
            return 0;
    }
}
""")
