"""Checker tests: keyed variants and existential anonymization
(paper §2.1's opt_key example, §2.4 / Figure 4, §3.3)."""

from repro.diagnostics import Code

from conftest import POINT, assert_ok, assert_rejected, codes

REGLIST = ("variant reglist [ 'Nil | 'Cons(tracked region, "
           "tracked reglist) ];\n")


class TestKeyedVariants:
    def test_paper_foo_example(self):
        assert_ok("""
void foo(tracked(F) FILE f, bool close_early) [-F] {
    tracked opt_key<F> flag;
    if (close_early) {
        fclose(f);
        flag = 'NoKey;
    } else {
        flag = 'SomeKey{F};
    }
    switch (flag) {
        case 'NoKey:
            int x = 0;
        case 'SomeKey:
            fclose(f);
    }
}
""")

    def test_forgetting_to_switch_is_a_leak(self):
        # "forgetting to test the flag would manifest itself by an
        # extra key at the end of the function" (§2.1).
        assert_rejected("""
void foo(tracked(F) FILE f) [-F] {
    tracked opt_key<F> flag;
    flag = 'SomeKey{F};
}
""", Code.KEY_LEAKED)

    def test_using_key_in_wrong_case(self):
        # In the 'NoKey case, key F is not restored.
        assert_rejected("""
void foo(tracked(F) FILE f, bool early) [-F] {
    tracked opt_key<F> flag;
    if (early) {
        fclose(f);
        flag = 'NoKey;
    } else {
        flag = 'SomeKey{F};
    }
    switch (flag) {
        case 'NoKey:
            fclose(f);
        case 'SomeKey:
            fclose(f);
    }
}
""", Code.KEY_CONSUMED_MISSING)

    def test_constructing_somekey_without_key_rejected(self):
        assert_rejected("""
void foo(tracked(F) FILE f) [-F] {
    fclose(f);
    tracked opt_key<F> flag;
    flag = 'SomeKey{F};
    switch (flag) {
        case 'NoKey:
            int x = 0;
        case 'SomeKey:
            fclose(f);
    }
}
""", Code.KEY_NOT_HELD)

    def test_capture_then_complete_in_case(self):
        assert_ok("""
void g(tracked(F) FILE f) [-F] {
    tracked opt_key<F> flag = 'SomeKey{F};
    switch (flag) {
        case 'NoKey:
            int x = 0;
        case 'SomeKey:
            fclose(f);
    }
}
""")

    def test_nonexhaustive_switch_rejected(self):
        assert_rejected("""
void g(tracked(F) FILE f) [-F] {
    tracked opt_key<F> flag = 'SomeKey{F};
    switch (flag) {
        case 'SomeKey:
            fclose(f);
    }
}
""", Code.NONEXHAUSTIVE_SWITCH)

    def test_default_cannot_cover_key_capturing_ctor(self):
        assert_rejected("""
void g(tracked(F) FILE f) [-F] {
    tracked opt_key<F> flag = 'SomeKey{F};
    switch (flag) {
        case 'NoKey:
            fclose(f);
        default:
            int x = 0;
    }
}
""", Code.BAD_PATTERN)

    def test_plain_variant_default_allowed(self):
        assert_ok("""
variant color [ 'Red | 'Green | 'Blue ];
int f(color c) {
    switch (c) {
        case 'Red:
            return 1;
        default:
            return 0;
    }
}
""")

    def test_plain_variant_values_copyable(self):
        assert_ok("""
variant opt_int [ 'NoInt | 'SomeInt(int) ];
int f() {
    opt_int a = 'SomeInt(4);
    opt_int b = a;
    switch (b) {
        case 'NoInt:
            return 0;
        case 'SomeInt(n):
            return n;
    }
}
""")

    def test_variant_argument_binding(self):
        assert_ok("""
variant opt_int [ 'NoInt | 'SomeInt(int) ];
int get(opt_int v, int dflt) {
    switch (v) {
        case 'NoInt:
            return dflt;
        case 'SomeInt(n):
            return n + 1;
    }
}
""")

    def test_wrong_binder_count_rejected(self):
        assert_rejected("""
variant opt_int [ 'NoInt | 'SomeInt(int) ];
int f(opt_int v) {
    switch (v) {
        case 'NoInt:
            return 0;
        case 'SomeInt(a, b):
            return a;
    }
}
""", Code.BAD_PATTERN)

    def test_unknown_ctor_in_switch(self):
        assert_rejected("""
variant opt_int [ 'NoInt | 'SomeInt(int) ];
int f(opt_int v) {
    switch (v) {
        case 'NoInt:
            return 0;
        case 'Something(n):
            return n;
        case 'SomeInt(n):
            return n;
    }
}
""", Code.UNDEFINED_CONSTRUCTOR)

    def test_unknown_ctor_in_expression(self):
        assert Code.UNDEFINED_CONSTRUCTOR in codes("""
void f() {
    int x = 'Bogus(1);
}
""")


class TestAnonymization:
    def test_figure4_key_lost_through_collection(self):
        # Putting the region on the list anonymizes its key; the point
        # guarded by R becomes inaccessible.
        result = codes(POINT + REGLIST + """
void main() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=4; y=2;};
    tracked reglist list = 'Cons(rgn, 'Nil);
    switch (list) {
        case 'Cons(rgn2, rest):
            pt.x++;
            Region.delete(rgn2);
            free(rest);
        case 'Nil:
            int y = 0;
    }
}
""")
        assert Code.KEY_NOT_HELD in result

    def test_unpacked_region_usable_under_fresh_key(self):
        assert_ok(REGLIST + """
void dispose(tracked reglist l) {
    switch (l) {
        case 'Nil:
            int done = 0;
        case 'Cons(r, rest):
            Region.delete(r);
            dispose(rest);
    }
}
void main() {
    tracked(R) region rgn = Region.create();
    tracked reglist list = 'Cons(rgn, 'Nil);
    switch (list) {
        case 'Cons(rgn2, rest):
            int n = Region.size(rgn2);
            Region.delete(rgn2);
            dispose(rest);
        case 'Nil:
            int y = 0;
    }
}
""")

    def test_figure4_fix_with_paired_list(self):
        # The paper's fix: keep the region and its point together so
        # the correlation between their keys is preserved.
        assert_ok(POINT + """
variant regpt [ 'None | 'Some(tracked region) ];
void main() {
    tracked(R) region rgn = Region.create();
    tracked regpt cell = 'Some(rgn);
    switch (cell) {
        case 'Some(rgn2):
            R2:point pt = new(rgn2) point {x=4; y=2;};
            pt.x++;
            Region.delete(rgn2);
        case 'None:
            int y = 0;
    }
}
""")

    def test_discarding_tracked_component_is_flagged(self):
        assert_rejected(REGLIST + """
void main() {
    tracked(R) region rgn = Region.create();
    tracked reglist list = 'Cons(rgn, 'Nil);
    switch (list) {
        case 'Cons(_, rest):
            free(rest);
        case 'Nil:
            int y = 0;
    }
}
""", Code.KEY_LEAKED)

    def test_packing_requires_live_key(self):
        assert_rejected(REGLIST + """
void main() {
    tracked(R) region rgn = Region.create();
    Region.delete(rgn);
    tracked reglist list = 'Cons(rgn, 'Nil);
    switch (list) {
        case 'Cons(r, rest):
            Region.delete(r);
            free(rest);
        case 'Nil:
            int y = 0;
    }
}
""", Code.KEY_NOT_HELD)

    def test_unbounded_chain(self):
        assert_ok(REGLIST + """
void drain(tracked reglist list) {
    switch (list) {
        case 'Cons(rgn, rest):
            Region.delete(rgn);
            drain(rest);
        case 'Nil:
            int done = 0;
    }
}
void main() {
    tracked(A) region ra = Region.create();
    tracked(B) region rb = Region.create();
    tracked reglist list = 'Cons(ra, 'Cons(rb, 'Nil));
    drain(list);
}
""")

    def test_anonymous_tracked_param_is_owned(self):
        # An anonymous tracked parameter transfers ownership; the
        # callee must dispose of it.
        assert_rejected("""
void keeps(tracked region rgn) {
    int n = Region.size(rgn);
}
""", Code.POSTCONDITION_MISMATCH)

    def test_anonymous_tracked_param_disposed_ok(self):
        assert_ok("""
void disposes(tracked region rgn) {
    Region.delete(rgn);
}
void main() {
    tracked(R) region rgn = Region.create();
    disposes(rgn);
}
""")

    def test_caller_loses_key_at_anonymous_transfer(self):
        assert_rejected("""
void disposes(tracked region rgn) {
    Region.delete(rgn);
}
void main() {
    tracked(R) region rgn = Region.create();
    disposes(rgn);
    Region.delete(rgn);
}
""", Code.KEY_CONSUMED_MISSING)
