"""Substrate simulator tests: regions, sockets and the kernel
(the paper's testbed equivalents)."""

import pytest

from repro.diagnostics import Code, RuntimeProtocolError
from repro.kernel import (APC_LEVEL, DISPATCH_LEVEL, DIRQL, FloppyDevice,
                          IOCTL_EJECT, IOCTL_INSERT, IOCTL_MOTOR_ON,
                          IRP_MJ_READ, IRP_MJ_WRITE, Irp, IrqlState,
                          KernelEvent, KernelSim, OWNER_DRIVER,
                          PASSIVE_LEVEL, PagedObject, PageManager, SpinLock,
                          STATUS_SUCCESS, leq, level_index)
from repro.regions import Region, RegionManager
from repro.sockets import SocketNetwork


class TestRegions:
    def test_create_allocate_delete(self):
        mgr = RegionManager()
        region = mgr.create("r")
        region.allocate(object())
        assert region.size == 1
        mgr.delete(region)
        assert not region.alive

    def test_double_delete(self):
        mgr = RegionManager()
        region = mgr.create()
        mgr.delete(region)
        with pytest.raises(RuntimeProtocolError) as exc:
            mgr.delete(region)
        assert exc.value.code is Code.RT_DOUBLE_FREE

    def test_allocate_from_deleted_region(self):
        mgr = RegionManager()
        region = mgr.create()
        mgr.delete(region)
        with pytest.raises(RuntimeProtocolError) as exc:
            region.allocate(object())
        assert exc.value.code is Code.RT_DANGLING

    def test_audit_lists_live_regions(self):
        mgr = RegionManager()
        a = mgr.create("a")
        b = mgr.create("b")
        mgr.delete(a)
        assert mgr.audit() == ["b"]

    def test_assert_no_leaks(self):
        mgr = RegionManager()
        mgr.create("leaky")
        with pytest.raises(RuntimeProtocolError) as exc:
            mgr.assert_no_leaks()
        assert exc.value.code is Code.RT_LEAK


class TestSockets:
    def setup_method(self):
        self.net = SocketNetwork()

    def server(self, port=80):
        srv = self.net.socket()
        self.net.bind(srv, "h", port)
        self.net.listen(srv, 4)
        return srv

    def test_full_connection(self):
        srv = self.server()
        cli = self.net.socket()
        self.net.connect(cli, "h", 80)
        conn = self.net.accept(srv)
        self.net.send(cli, b"ping")
        assert self.net.receive(conn) == b"ping"
        self.net.send(conn, b"pong")
        assert self.net.receive(cli) == b"pong"

    def test_listen_before_bind_faults(self):
        sock = self.net.socket()
        with pytest.raises(RuntimeProtocolError):
            self.net.listen(sock, 4)

    def test_receive_on_raw_faults(self):
        sock = self.net.socket()
        with pytest.raises(RuntimeProtocolError):
            self.net.receive(sock)

    def test_bind_address_in_use(self):
        self.server(9)
        other = self.net.socket()
        with pytest.raises(RuntimeProtocolError):
            self.net.bind(other, "h", 9)

    def test_bind_checked_returns_error_code(self):
        self.server(9)
        other = self.net.socket()
        assert self.net.bind_checked(other, "h", 9) == 98
        assert other.state == "raw"

    def test_bind_checked_success(self):
        sock = self.net.socket()
        assert self.net.bind_checked(sock, "h", 10) is None
        assert sock.state == "named"

    def test_connect_refused_without_listener(self):
        cli = self.net.socket()
        with pytest.raises(RuntimeProtocolError):
            self.net.connect(cli, "h", 5555)

    def test_accept_without_pending_connection(self):
        srv = self.server()
        with pytest.raises(RuntimeProtocolError):
            self.net.accept(srv)

    def test_double_close(self):
        sock = self.net.socket()
        self.net.close(sock)
        with pytest.raises(RuntimeProtocolError) as exc:
            self.net.close(sock)
        assert exc.value.code is Code.RT_DOUBLE_FREE

    def test_send_to_closed_peer(self):
        srv = self.server()
        cli = self.net.socket()
        self.net.connect(cli, "h", 80)
        conn = self.net.accept(srv)
        self.net.close(cli)
        with pytest.raises(RuntimeProtocolError):
            self.net.send(conn, b"x")

    def test_audit_reports_unclosed(self):
        sock = self.net.socket()
        assert self.net.audit() == [sock.id]
        self.net.close(sock)
        assert self.net.audit() == []

    def test_rebind_after_close_frees_address(self):
        srv = self.server(7)
        self.net.close(srv)
        fresh = self.net.socket()
        self.net.bind(fresh, "h", 7)
        assert fresh.state == "named"


class TestIrql:
    def test_order(self):
        assert leq(PASSIVE_LEVEL, DIRQL)
        assert not leq(DISPATCH_LEVEL, APC_LEVEL)
        assert level_index(PASSIVE_LEVEL) == 0

    def test_raise_and_lower(self):
        irql = IrqlState()
        prev = irql.raise_to(DISPATCH_LEVEL)
        assert prev == PASSIVE_LEVEL
        assert irql.level == DISPATCH_LEVEL
        irql.lower_to(prev)
        assert irql.level == PASSIVE_LEVEL

    def test_raise_downwards_faults(self):
        irql = IrqlState(DISPATCH_LEVEL)
        with pytest.raises(RuntimeProtocolError):
            irql.raise_to(PASSIVE_LEVEL)

    def test_require(self):
        irql = IrqlState(DISPATCH_LEVEL)
        irql.require(DISPATCH_LEVEL, "op")
        with pytest.raises(RuntimeProtocolError):
            irql.require(APC_LEVEL, "op")


class TestSpinLockAndEvents:
    def test_lock_raises_irql(self):
        irql = IrqlState()
        lock = SpinLock("l")
        prev = lock.acquire(irql)
        assert irql.level == DISPATCH_LEVEL
        lock.release(irql, prev)
        assert irql.level == PASSIVE_LEVEL

    def test_double_acquire_deadlocks(self):
        irql = IrqlState()
        lock = SpinLock()
        lock.acquire(irql)
        with pytest.raises(RuntimeProtocolError) as exc:
            lock.acquire(irql)
        assert exc.value.code is Code.RT_DEADLOCK

    def test_release_unheld_faults(self):
        irql = IrqlState(DISPATCH_LEVEL)
        with pytest.raises(RuntimeProtocolError):
            SpinLock().release(irql, PASSIVE_LEVEL)

    def test_acquire_at_dirql_faults(self):
        irql = IrqlState(DIRQL)
        with pytest.raises(RuntimeProtocolError):
            SpinLock().acquire(irql)

    def test_event_signal_consume(self):
        ev = KernelEvent("e")
        ev.signal()
        assert ev.signaled
        ev.consume()
        assert not ev.signaled

    def test_double_signal_faults(self):
        ev = KernelEvent()
        ev.signal()
        with pytest.raises(RuntimeProtocolError):
            ev.signal()


class TestPaging:
    def test_resident_access_any_level(self):
        irql = IrqlState(DIRQL)
        pages = PageManager(irql)
        obj = pages.allocate("data", resident=True)
        assert pages.access(obj) == "data"

    def test_nonresident_access_low_level_pages_in(self):
        irql = IrqlState(PASSIVE_LEVEL)
        pages = PageManager(irql)
        obj = pages.allocate("data", resident=False)
        assert pages.access(obj) == "data"
        assert obj.resident
        assert obj.faults == 1

    def test_nonresident_access_high_level_deadlocks(self):
        irql = IrqlState(DISPATCH_LEVEL)
        pages = PageManager(irql)
        obj = pages.allocate("data", resident=False)
        with pytest.raises(RuntimeProtocolError) as exc:
            pages.access(obj)
        assert exc.value.code is Code.RT_DEADLOCK

    def test_trim_evicts(self):
        irql = IrqlState()
        pages = PageManager(irql)
        obj = pages.allocate("x")
        pages.trim()
        assert not obj.resident


class TestFloppyDevice:
    def test_read_write_roundtrip(self):
        dev = FloppyDevice(sectors=4)
        dev.write(100, b"hello")
        assert dev.read(100, 5) == b"hello"

    def test_bounds_clamped(self):
        dev = FloppyDevice(sectors=1)
        written = dev.write(500, b"0123456789ABCDEF")
        assert written == 12  # only 12 bytes fit before the end

    def test_media_checks(self):
        dev = FloppyDevice()
        assert dev.check_ready() is None
        dev.ioctl(IOCTL_EJECT)
        assert dev.check_ready() is not None
        dev.ioctl(IOCTL_INSERT)
        assert dev.check_ready() is None

    def test_motor_ioctl(self):
        dev = FloppyDevice()
        dev.ioctl(IOCTL_MOTOR_ON)
        assert dev.motor_on

    def test_latency_scales_with_size(self):
        dev = FloppyDevice(seek_ticks=2, transfer_ticks=1)
        assert dev.latency_for(512) == 3
        assert dev.latency_for(5 * 512) == 7

    def test_unknown_ioctl_faults(self):
        with pytest.raises(RuntimeProtocolError):
            FloppyDevice().ioctl(0x999)


class TestIrpOwnershipRuntime:
    def test_access_requires_ownership(self):
        irp = Irp(IRP_MJ_READ, length=512)
        with pytest.raises(RuntimeProtocolError):
            irp.require_owner(OWNER_DRIVER, "IrpTransferLength")
        irp.give_to(OWNER_DRIVER)
        irp.require_owner(OWNER_DRIVER, "IrpTransferLength")

    def test_kernel_dispatch_without_preparing_stack_location(self):
        # IoCallDriver requires a prepared next stack location.
        kernel = KernelSim()
        pdo = kernel.create_pdo("pdo", FloppyDevice())
        irp = Irp(IRP_MJ_READ, buffer=[0] * 8, length=8)
        irp.give_to(OWNER_DRIVER)
        with pytest.raises(RuntimeProtocolError):
            kernel.io_call_driver(None, pdo, irp)

    def test_complete_requires_driver_ownership(self):
        kernel = KernelSim()
        irp = Irp(IRP_MJ_WRITE)
        with pytest.raises(RuntimeProtocolError):
            kernel.io_complete_request(None, irp, STATUS_SUCCESS)
