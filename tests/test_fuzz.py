"""The adversarial generator, differential harness and shrinker.

The heavy end-to-end runs (hundreds of programs) live in
``benchmarks/fuzz_smoke.py``; here we pin the machinery itself:
generator validity and intent coverage, byte-identity of all four
checking paths on a small batch, the divergence/shrink pipeline (via a
stubbed harness — the real checker has no known divergence to use),
and the ``vaultc fuzz`` CLI contract.
"""

from __future__ import annotations

import json

import pytest

from conftest import needs_unix, vaultc
from repro import check_source
from repro.pipeline import fork_available
from repro.testing import (DifferentialHarness, DifferentialResult,
                           GenConfig, canonical_stdout, derive_seed,
                           generate_program, run_fuzz, shrink)
from repro.testing.generate import INTENTS, VIOLATION_INTENTS
from repro.testing.shrink import split_decls

pytestmark = pytest.mark.fuzz


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------

class TestGenerator:
    def test_same_seed_same_bytes(self):
        for seed in (0, 1, 7, 123456, 2**31 - 1):
            assert (generate_program(seed).source
                    == generate_program(seed).source)

    def test_explicit_config_is_honoured_and_deterministic(self):
        cfg = GenConfig(n_protocols=1, n_clients=2, p_violation=0.0,
                        p_variant=0.0, near_miss=False)
        a = generate_program(42, cfg)
        b = generate_program(42, cfg)
        assert a.source == b.source
        assert len(a.protocols) == 1
        assert not a.adversarial

    def test_violation_free_programs_check_clean(self):
        cfg = GenConfig(p_violation=0.0)
        for seed in range(8):
            program = generate_program(seed, cfg)
            assert not program.adversarial
            report = check_source(program.source, filename="clean.vlt")
            assert report.ok, report.render()

    def test_forced_violations_are_rejected_with_protocol_codes(self):
        cfg = GenConfig(p_violation=1.0)
        rejected = 0
        for seed in range(8):
            program = generate_program(seed, cfg)
            report = check_source(program.source, filename="bad.vlt")
            codes = {c.value for c in report.codes()}
            assert all(c.startswith("V03") for c in codes), codes
            if not report.ok:
                rejected += 1
        assert rejected == 8, "every adversarial program must be rejected"

    def test_every_intent_is_reachable(self):
        seen = set()
        for seed in range(120):
            seen.update(generate_program(seed).intents)
            if seen == set(INTENTS):
                break
        assert seen == set(INTENTS), f"missing intents: {set(INTENTS) - seen}"

    def test_recorded_intents_are_truthful(self):
        # adversarial <=> the checker rejects, over a decent sample
        for seed in range(30):
            program = generate_program(seed)
            report = check_source(program.source, filename="t.vlt")
            if program.adversarial:
                assert not report.ok, \
                    f"seed {seed} claims violations but checked clean"
            else:
                assert report.ok, (
                    f"seed {seed} claims clean but was rejected:\n"
                    + report.render())

    def test_derive_seed_is_pinned(self):
        # the replay contract: these exact values are documented
        assert derive_seed(0, 0) == 12_289
        assert derive_seed(1, 0) == 1_012_292
        assert derive_seed(2026, 5) == (2026 * 1_000_003
                                        + 5 * 7_919 + 12_289) & 0x7FFF_FFFF


# ---------------------------------------------------------------------------
# Shrinker
# ---------------------------------------------------------------------------

class TestShrink:
    def test_split_decls_round_trips(self):
        for seed in range(10):
            source = generate_program(seed).source
            assert "".join(split_decls(source)) == source

    def test_split_decls_keeps_variant_decls_whole(self):
        source = generate_program(3).source
        for chunk in split_decls(source):
            if chunk.strip().startswith("variant"):
                assert chunk.rstrip().endswith(";")
                assert "|" in chunk

    def test_shrink_reaches_a_minimal_single_client(self):
        cfg = GenConfig(p_violation=1.0, n_clients=6, wide_fillers=3)
        program = generate_program(11, cfg)

        # The predicate pins the *family* of the failure (a V03xx
        # protocol error), the way a real divergence predicate pins
        # the divergence — a plain "not ok" could be faked by e.g.
        # deleting main's return statement.
        def still_protocol_error(src: str) -> bool:
            report = check_source(src, filename="s.vlt")
            return any(c.value.startswith("V03") for c in report.codes())

        small = shrink(program.source, still_protocol_error)
        assert still_protocol_error(small)
        assert len(small) < len(program.source)
        # exactly one client function survives, and no fillers
        assert small.count("int client_") == 1
        assert "filler_" not in small

    def test_shrink_returns_input_when_predicate_fails(self):
        source = generate_program(0).source
        assert shrink(source, lambda s: False) == source

    def test_shrink_survives_crashing_predicate(self):
        # candidates that no longer parse raise inside check_source;
        # shrink must treat that as "predicate false", not crash
        program = generate_program(5, GenConfig(p_violation=1.0))

        def fragile(src: str) -> bool:
            return not check_source(src, filename="s.vlt").ok

        small = shrink(program.source, fragile)
        assert fragile(small)


# ---------------------------------------------------------------------------
# Differential harness: byte identity across paths
# ---------------------------------------------------------------------------

@pytest.mark.slow
@pytest.mark.daemon
class TestDifferential:
    def test_all_paths_agree_on_a_small_batch(self):
        with DifferentialHarness() as harness:
            assert "serial" in harness.paths
            for index in range(4):
                program = generate_program(derive_seed(404, index))
                result = harness.check(program.source, f"b{index}.vlt")
                assert not result.divergent, result.outputs

    def test_canonical_stdout_matches_cli_format(self):
        assert canonical_stdout(True, "", 0, "x.vlt") \
            == "x.vlt: OK (protocols verified)\n"
        assert canonical_stdout(False, "boom", 2, "x.vlt") \
            == "boom\nx.vlt: 2 error(s)\n"

    @pytest.mark.skipif(not fork_available(), reason="needs os.fork")
    def test_parallel_path_really_runs(self):
        with DifferentialHarness() as harness:
            assert "parallel" in harness.paths

    @needs_unix
    def test_daemon_path_really_runs(self):
        with DifferentialHarness() as harness:
            assert "daemon" in harness.paths


class _DivergingHarness:
    """Stub harness: the daemon 'path' drops one diagnostic whenever a
    marker client is present — a synthetic checker bug for exercising
    the divergence/shrink pipeline end to end."""

    MARKER = "client_wrong_state"

    def __init__(self, *args, **kwargs):
        self.paths = ["serial", "daemon"]
        self.skipped = []

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        pass

    def check(self, source: str, rel: str) -> DifferentialResult:
        report = check_source(source, filename=rel)
        serial = canonical_stdout(report.ok, report.render(),
                                  len(report.errors), rel)
        daemon = serial
        if self.MARKER in source and not report.ok:
            daemon = canonical_stdout(True, "", 0, rel)   # the "bug"
        return DifferentialResult(rel=rel,
                                  outputs={"serial": serial,
                                           "daemon": daemon})


class TestFuzzLoop:
    def test_report_shape_and_determinism(self):
        report = run_fuzz(3, seed=77, use_daemon=False, use_parallel=False)
        again = run_fuzz(3, seed=77, use_daemon=False, use_parallel=False)
        assert report.ok
        assert report.count == 3
        assert report.programs_ok + report.programs_rejected == 3
        assert report.to_dict() == again.to_dict()
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["seed"] == 77

    def test_divergence_is_recorded_and_shrunk(self, monkeypatch):
        import repro.testing.fuzz as fuzz_mod
        monkeypatch.setattr(fuzz_mod, "DifferentialHarness",
                            _DivergingHarness)
        # hunt a seed whose derived batch contains the marker intent
        seed = next(s for s in range(200)
                    if any(_DivergingHarness.MARKER in
                           generate_program(derive_seed(s, i)).source
                           for i in range(3)))
        report = fuzz_mod.run_fuzz(3, seed=seed, use_daemon=True,
                                   use_parallel=False)
        assert not report.ok
        record = report.divergences[0]
        assert record.paths == ["daemon"]
        assert _DivergingHarness.MARKER in record.shrunk
        assert len(record.shrunk) < len(record.source)
        # the shrunk reproducer still diverges under the same harness
        assert _DivergingHarness().check(record.shrunk, "r.vlt").divergent


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestFuzzCli:
    def test_emit_is_deterministic(self):
        a = vaultc(["fuzz", "--emit", "12289"])
        b = vaultc(["fuzz", "--emit", "12289"])
        assert a.returncode == 0
        assert a.stdout == b.stdout
        assert "seed=12289" in a.stdout

    def test_small_run_reports_byte_identity(self, tmp_path):
        out = tmp_path / "report.json"
        result = vaultc(["fuzz", "--count", "4", "--seed", "5",
                         "--no-daemon", "--no-parallel", "-q",
                         "--out", str(out)])
        assert result.returncode == 0, result.stderr
        assert "byte-identical" in result.stdout
        payload = json.loads(out.read_text())
        assert payload["count"] == 4
        assert payload["divergences"] == []
