"""Unit tests for keys, statesets and the held-key set (linearity)."""

import pytest

from repro.core import (CBase, CapabilityError, HeldKeys, Key, StateSet,
                        StateSpace, StateVar, fresh_key, states_equal)
from repro.core.keys import DEFAULT_STATE, state_display


class TestKeys:
    def test_fresh_keys_are_distinct(self):
        a = fresh_key("R")
        b = fresh_key("R")
        assert a is not b
        assert a.uid != b.uid

    def test_key_display_uses_program_name(self):
        assert fresh_key("R").display() == "R"

    def test_origin_is_recorded(self):
        assert fresh_key("F", origin="param").origin == "param"


class TestStateSet:
    def setup_method(self):
        self.levels = StateSet(
            "IRQ", ("PASSIVE", "APC", "DISPATCH", "DIRQL"),
            (("PASSIVE", "APC"), ("APC", "DISPATCH"),
             ("DISPATCH", "DIRQL")))

    def test_membership(self):
        assert "APC" in self.levels
        assert "NOPE" not in self.levels

    def test_leq_reflexive(self):
        assert self.levels.leq("APC", "APC")

    def test_leq_transitive(self):
        assert self.levels.leq("PASSIVE", "DIRQL")

    def test_leq_not_symmetric(self):
        assert not self.levels.leq("DISPATCH", "APC")

    def test_lub_on_chain(self):
        assert self.levels.lub("PASSIVE", "DISPATCH") == "DISPATCH"

    def test_bottom(self):
        assert self.levels.bottom() == "PASSIVE"

    def test_partial_order_incomparable(self):
        diamond = StateSet("D", ("a", "b", "c", "top"),
                           (("a", "b"), ("a", "c"), ("b", "top"),
                            ("c", "top")))
        assert not diamond.leq("b", "c")
        assert not diamond.leq("c", "b")
        assert diamond.lub("b", "c") == "top"

    def test_no_bottom_in_forest(self):
        forest = StateSet("F", ("x", "y"), ())
        assert forest.bottom() is None


class TestStateSpace:
    def setup_method(self):
        self.space = StateSpace()
        self.space.add(StateSet("IRQ", ("P", "A", "D"),
                                (("P", "A"), ("A", "D"))))

    def test_set_of_state(self):
        assert self.space.set_of_state("A").name == "IRQ"
        assert self.space.set_of_state("open") is None

    def test_leq_concrete(self):
        assert self.space.leq("P", "D")
        assert not self.space.leq("D", "P")

    def test_leq_outside_any_set_only_reflexive(self):
        assert self.space.leq("open", "open")
        assert not self.space.leq("open", "closed")

    def test_leq_bounded_var(self):
        var = StateVar("lvl", "A")
        assert self.space.leq(var, "D")
        assert self.space.leq(var, "A")
        assert not self.space.leq(var, "P")

    def test_leq_unbounded_var_never_proves(self):
        assert not self.space.leq(StateVar("lvl"), "D")

    def test_states_leq(self):
        assert self.space.states_leq("A") == {"P", "A"}


class TestStatesEqual:
    def test_concrete_equality(self):
        assert states_equal("open", "open")
        assert not states_equal("open", "closed")

    def test_var_identity(self):
        v = StateVar("s")
        assert states_equal(v, v)
        assert not states_equal(v, StateVar("s"))

    def test_var_vs_concrete(self):
        assert not states_equal(StateVar("s"), "open")

    def test_display(self):
        assert state_display(DEFAULT_STATE) == "T"
        assert state_display("raw") == "raw"
        assert "DISPATCH" in state_display(StateVar("lvl", "DISPATCH"))


class TestHeldKeys:
    def test_add_and_contains(self):
        held = HeldKeys()
        key = fresh_key("R")
        held.add(key, "open")
        assert key in held
        assert held.state_of(key) == "open"

    def test_duplicate_add_raises(self):
        held = HeldKeys()
        key = fresh_key("R")
        held.add(key, "a")
        with pytest.raises(CapabilityError) as exc:
            held.add(key, "a")
        assert exc.value.kind == "duplicate"

    def test_remove_returns_info(self):
        held = HeldKeys()
        key = fresh_key("R")
        held.add(key, "a", payload=CBase("int"))
        info = held.remove(key)
        assert info.state == "a"
        assert key not in held

    def test_remove_missing_raises(self):
        held = HeldKeys()
        with pytest.raises(CapabilityError) as exc:
            held.remove(fresh_key("R"))
        assert exc.value.kind == "missing"

    def test_set_state(self):
        held = HeldKeys()
        key = fresh_key("S")
        held.add(key, "raw")
        held.set_state(key, "named")
        assert held.state_of(key) == "named"

    def test_clone_is_independent(self):
        held = HeldKeys()
        key = fresh_key("R")
        held.add(key, "a")
        snapshot = held.clone()
        held.set_state(key, "b")
        assert snapshot.state_of(key) == "a"

    def test_rename(self):
        held = HeldKeys()
        old = fresh_key("R")
        new = fresh_key("J")
        held.add(old, "a")
        renamed = held.rename({old: new})
        assert new in renamed
        assert old not in renamed

    def test_same_shape(self):
        a, b = HeldKeys(), HeldKeys()
        key = fresh_key("R")
        a.add(key, "x")
        b.add(key, "x")
        assert a.same_shape(b)
        b.set_state(key, "y")
        assert not a.same_shape(b)

    def test_same_shape_differing_keys(self):
        a, b = HeldKeys(), HeldKeys()
        a.add(fresh_key("R"), "x")
        assert not a.same_shape(b)

    def test_diff_summary_mentions_key(self):
        a, b = HeldKeys(), HeldKeys()
        key = fresh_key("R")
        a.add(key, "x")
        assert "R" in a.diff_summary(b)

    def test_show_sorted(self):
        held = HeldKeys()
        held.add(fresh_key("B"), "s1")
        held.add(fresh_key("A"), "s2")
        text = held.show()
        assert text.index("A@") < text.index("B@")

    def test_len_and_iter(self):
        held = HeldKeys()
        keys = [fresh_key(n) for n in "XYZ"]
        for k in keys:
            held.add(k, "s")
        assert len(held) == 3
        assert set(held) == set(keys)
