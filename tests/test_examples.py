"""The examples are part of the product: each must run cleanly, and
the pipeline example must behave identically interpreted and compiled."""

import importlib.util
import io
import os
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")

EXAMPLES = ["quickstart", "sockets_server", "driver_demo",
            "protocol_lint", "pipeline_compiler"]


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name):
    module = load_example(name)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    output = buffer.getvalue()
    assert output.strip()
    assert "MISMATCH" not in output
    assert "FAILED" not in output


class TestPipelineParity:
    @pytest.fixture(scope="class")
    def pipeline_source(self):
        return load_example("pipeline_compiler").PIPELINE

    def test_pipeline_checks(self, pipeline_source):
        from repro import check_source
        report = check_source(pipeline_source)
        assert report.ok, report.render()

    def test_interpreted_equals_compiled(self, pipeline_source):
        from repro import load_context, parse
        from repro.lower import compile_to_python, load_compiled
        from repro.stdlib.hostimpl import create_host, make_interpreter

        ctx, reporter = load_context(pipeline_source)
        assert reporter.ok
        interp = make_interpreter(ctx, create_host())
        module = load_compiled(compile_to_python(parse(pipeline_source)),
                               create_host())

        for expr, expected in [
            ("1 + 1", 2),
            ("6 * 7", 42),
            ("2 + 3 * 4", 14),
            ("(2 + 3) * 4", 20),
            ("((1 + 2) * (3 + 4)) + 5", 26),
            ("100", 100),
        ]:
            interpreted = interp.call("compile_and_run", [expr, len(expr)])
            compiled = module["compile_and_run"](expr, len(expr))
            assert interpreted == compiled == expected, expr

    def test_pipeline_under_monitor(self, pipeline_source):
        from repro import load_context
        from repro.runtime.monitor import make_monitored
        ctx, reporter = load_context(pipeline_source)
        assert reporter.ok
        monitored = make_monitored(ctx)
        assert monitored.call("main") == 17
        assert monitored.monitor.audit() == []
