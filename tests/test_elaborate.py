"""Elaboration and program-context tests: surface types to core types
(Figure 6's internal language), signatures, implicit polymorphism."""

import pytest

from repro import load_context
from repro.core import (ANY_STATE, AtMostState, CArray, CBase, CFun,
                        CGuarded, CNamed, CPacked, CTracked, CTypeVar,
                        ExactState, Key, KeyVarRef, StateVarRef,
                        signatures_alpha_equal)
from repro.diagnostics import Code


def build(source, units=None):
    ctx, reporter = load_context(source, units=units or [])
    assert reporter.ok, reporter.render()
    return ctx


def sig_of(source, name, units=None):
    return build(source, units).functions[name]


class TestSignatureElaboration:
    def test_tracked_param_gets_key_var(self):
        sig = sig_of("type FILE; void f(tracked(F) FILE g) [-F];", "f")
        param = sig.params[0].type
        assert isinstance(param, CTracked)
        assert param.key == KeyVarRef("F")
        assert "F" in sig.key_vars

    def test_implicit_key_generalisation(self):
        # F never declared via <key F>: bound at first reference (§2.1).
        sig = sig_of("type FILE; void f(tracked(F) FILE g) [F];", "f")
        assert sig.key_vars == ("F",)

    def test_anonymous_tracked_param_is_packed(self):
        sig = sig_of("type region; void f(tracked region r);", "f")
        assert isinstance(sig.params[0].type, CPacked)

    def test_effect_modes(self):
        sig = sig_of(
            "type T; void f(tracked(A) T a, tracked(B) T b) [-A, +B];", "f")
        modes = {i.key: i.mode for i in sig.effect.items}
        assert modes == {"A": "consume", "B": "produce"}

    def test_fresh_key_in_return(self):
        sig = sig_of("type sock; tracked(N) sock mk() [new N@ready];", "mk")
        assert isinstance(sig.ret, CTracked)
        item = sig.effect.items[0]
        assert item.mode == "fresh"
        assert item.post == ExactState("ready")

    def test_state_transition_effect(self):
        sig = sig_of("type sock; void bind(tracked(S) sock s) "
                     "[S@raw->named];", "bind")
        item = sig.effect.items[0]
        assert item.pre == ExactState("raw")
        assert item.post == ExactState("named")

    def test_guarded_param(self):
        sig = sig_of("""
type FILE;
type guarded_int<key K> = K:int;
void f(tracked(F) FILE g, guarded_int<F> gi) [F];
""", "f")
        guarded = sig.params[1].type
        assert isinstance(guarded, CGuarded)
        assert guarded.guards[0][0] == KeyVarRef("F")
        assert guarded.inner == CBase("int")

    def test_alias_expansion_with_type_param(self):
        sig = sig_of("""
type box<type T> = T[];
void f(box<int> b);
""", "f")
        assert sig.params[0].type == CArray(CBase("int"))

    def test_bounded_state_effect(self):
        sig = sig_of("""
stateset L = [ lo < mid < hi ];
key GK @ L;
void f() [GK @ (lvl <= mid)];
""", "f")
        item = sig.effect.items[0]
        assert item.pre == AtMostState("lvl", "mid")
        assert "lvl" in sig.state_vars

    def test_state_var_flows_into_return_type(self):
        sig = sig_of("""
stateset L = [ lo < hi ];
key GK @ L;
type SAVED<state S>;
SAVED<lvl> f() [GK @ (lvl <= hi) -> hi];
""", "f")
        ret = sig.ret
        assert isinstance(ret, CNamed)
        assert ret.args[0].state == StateVarRef("lvl", "hi")

    def test_param_bound_state_var_resolves_in_effect(self):
        # KeReleaseSpinLock's shape: the param binds S, the effect's
        # post-state must refer to the same variable.
        sig = sig_of("""
stateset L = [ lo < hi ];
key GK @ L;
type SAVED<state S>;
void f(SAVED<S> old) [GK @ hi -> S];
""", "f")
        post = sig.effect.items[0].post
        assert post == ExactState(StateVarRef("S"))

    def test_funtype_alias_becomes_cfun(self):
        sig = sig_of("""
type T;
type CB = int Fn(int x);
void register(CB callback);
""", "register")
        assert isinstance(sig.params[0].type, CFun)

    def test_global_key_resolves_to_concrete_key(self):
        ctx = build("""
stateset L = [ a < b ];
key GK @ L;
type cfg;
type guarded_cfg = GK:cfg;
void f(guarded_cfg c);
""")
        param = ctx.functions["f"].params[0].type
        assert isinstance(param, CGuarded)
        assert isinstance(param.guards[0][0], Key)


class TestWellFormedness:
    def error_codes(self, source, units=None):
        from repro import load_context as lc
        _ctx, reporter = lc(source, units=units or [])
        return reporter.codes()

    def test_unknown_type(self):
        assert Code.UNDEFINED_TYPE in self.error_codes("void f(mystery m);")

    def test_arity_mismatch_on_type(self):
        assert Code.ARITY_MISMATCH in self.error_codes("""
type box<type T> = T[];
void f(box<int, int> b);
""")

    def test_recursive_alias_rejected(self):
        assert Code.BAD_TYPE_ARGUMENT in self.error_codes(
            "type loop = loop;")

    def test_variant_undeclared_attach_key(self):
        assert Code.UNDEFINED_KEY in self.error_codes(
            "variant v [ 'C {K} ];")

    def test_duplicate_ctor_across_variants(self):
        assert Code.DUPLICATE_NAME in self.error_codes("""
variant a [ 'X ];
variant b [ 'X ];
""")

    def test_duplicate_struct_field(self):
        assert Code.DUPLICATE_NAME in self.error_codes(
            "struct s { int a; int a; }")

    def test_unknown_stateset_on_key(self):
        assert Code.UNDEFINED_STATE in self.error_codes("key GK @ NOPE;")

    def test_bound_must_be_in_a_stateset(self):
        assert Code.UNDEFINED_STATE in self.error_codes("""
type T;
void f(tracked(K) T t) [K @ (s <= nowhere)];
""")


class TestAlphaEquality:
    def sig(self, source, name):
        return sig_of("type FILE;\n" + source, name)

    def test_renamed_keys_equal(self):
        a = self.sig("void f(tracked(F) FILE g) [-F];", "f")
        b = self.sig("void h(tracked(Q) FILE g) [-Q];", "h")
        assert signatures_alpha_equal(a, b)

    def test_different_modes_not_equal(self):
        a = self.sig("void f(tracked(F) FILE g) [-F];", "f")
        b = self.sig("void h(tracked(F) FILE g) [F];", "h")
        assert not signatures_alpha_equal(a, b)

    def test_different_states_not_equal(self):
        a = self.sig("void f(tracked(F) FILE g) [F@raw];", "f")
        b = self.sig("void h(tracked(F) FILE g) [F@named];", "h")
        assert not signatures_alpha_equal(a, b)

    def test_param_type_matters(self):
        a = self.sig("void f(int x);", "f")
        b = self.sig("void h(string x);", "h")
        assert not signatures_alpha_equal(a, b)


class TestStdlibContext:
    def test_all_units_build_together(self):
        from repro import load_context as lc
        ctx, reporter = lc("void nothing() { }")
        assert reporter.ok
        assert ctx.function("create", module="Region") is not None
        assert ctx.function("IoCompleteRequest") is not None
        assert ctx.variant("COMPLETION_RESULT") is not None
        assert ctx.global_key("IRQL") is not None

    def test_irql_stateset_order(self):
        from repro import load_context as lc
        ctx, _ = lc("void nothing() { }")
        space = ctx.statespace
        assert space.leq("PASSIVE_LEVEL", "DISPATCH_LEVEL")
        assert not space.leq("DIRQL", "APC_LEVEL")

    def test_keyed_variants_registered(self):
        from repro import load_context as lc
        ctx, _ = lc("void nothing() { }")
        assert ctx.variant("status").captures_keys
        assert ctx.variant("opt_key").captures_keys
        assert not ctx.variant("domain").captures_keys
