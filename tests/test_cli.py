"""CLI tests for ``vaultc``."""

import json
import os

import pytest

from repro.cli import main

GOOD = """
struct point { int x; int y; }
int main() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=1; y=2;};
    int v = pt.x + pt.y;
    Region.delete(rgn);
    return v;
}
"""

LEAKY = """
void main() {
    tracked(R) region rgn = Region.create();
}
"""


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "good.vlt"
    path.write_text(GOOD)
    return str(path)


@pytest.fixture
def leaky_file(tmp_path):
    path = tmp_path / "leaky.vlt"
    path.write_text(LEAKY)
    return str(path)


class TestCheck:
    def test_check_good(self, good_file, capsys):
        assert main(["check", good_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_leaky(self, leaky_file, capsys):
        assert main(["check", leaky_file]) == 1
        assert "V0302" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["check", "/nonexistent.vlt"]) == 1


class TestRun:
    def test_run_good(self, good_file, capsys):
        assert main(["run", good_file]) == 0
        assert "-> 3" in capsys.readouterr().out

    def test_run_rejects_leaky(self, leaky_file):
        assert main(["run", leaky_file]) == 1

    def test_run_unchecked_reports_leak(self, leaky_file, capsys):
        rc = main(["run", leaky_file, "--unchecked"])
        assert rc == 3
        assert "leak" in capsys.readouterr().out.lower()


class TestCompileEraseStats:
    def test_compile_to_stdout(self, good_file, capsys):
        assert main(["compile", good_file]) == 0
        out = capsys.readouterr().out
        assert "def main(" in out

    def test_compile_to_file(self, good_file, tmp_path):
        out_path = str(tmp_path / "out.py")
        assert main(["compile", good_file, "-o", out_path]) == 0
        assert os.path.exists(out_path)

    def test_erase(self, good_file, capsys):
        assert main(["erase", good_file]) == 0
        out = capsys.readouterr().out
        assert "tracked" not in out
        assert "R:" not in out

    def test_stats(self, good_file, capsys):
        assert main(["stats", good_file]) == 0
        out = capsys.readouterr().out
        assert "tokens" in out

    def test_mutate(self, good_file, capsys):
        assert main(["mutate", good_file, "--limit", "4"]) == 0
        out = capsys.readouterr().out
        assert "Vault checker" in out

    def test_fmt_prints_normalised_source(self, good_file, capsys):
        assert main(["fmt", good_file]) == 0
        out = capsys.readouterr().out
        from repro.syntax import parse_program, pretty
        assert pretty(parse_program(out)) == out

    def test_fmt_in_place(self, good_file, capsys):
        assert main(["fmt", good_file, "-i"]) == 0
        assert main(["check", good_file]) == 0

    def test_cfg_all(self, good_file, capsys):
        assert main(["cfg", good_file]) == 0
        out = capsys.readouterr().out
        assert "cfg main:" in out
        assert "(entry)" in out

    def test_cfg_single_function(self, good_file, capsys):
        assert main(["cfg", good_file, "-f", "main"]) == 0
        assert "cfg main:" in capsys.readouterr().out

    def test_cfg_unknown_function(self, good_file, capsys):
        assert main(["cfg", good_file, "-f", "nope"]) == 1

    def test_run_monitor_clean(self, good_file, capsys):
        assert main(["run", good_file, "--monitor"]) == 0

    def test_run_monitor_detects_leak(self, leaky_file, capsys):
        rc = main(["run", leaky_file, "--unchecked", "--monitor"])
        assert rc == 3

    def test_stats_includes_checker_metrics(self, good_file, capsys):
        assert main(["stats", good_file]) == 0
        out = capsys.readouterr().out
        assert "checker metrics (one cold check):" in out
        assert "cache.context.misses" in out


class TestObservability:
    def test_profile_output_shape(self, good_file, capsys):
        assert main(["check", good_file, "--profile"]) == 0
        err = capsys.readouterr().err
        assert "profile:" in err
        assert "context" in err and "ms" in err
        assert "check" in err
        assert "functions checked" in err
        assert "functions replayed" in err

    def test_trace_emits_valid_chrome_json(self, good_file, tmp_path,
                                           capsys):
        from repro.obs import validate_chrome_trace
        trace_path = str(tmp_path / "trace.json")
        assert main(["check", good_file, "--trace", trace_path]) == 0
        with open(trace_path) as handle:
            payload = json.load(handle)
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        for event in events:
            for key in ("name", "ph", "ts", "pid"):
                assert key in event
        names = {e["name"] for e in events}
        assert {"check_unit", "lex", "parse", "elaborate"} <= names

    def test_trace_written_even_for_rejected_program(self, leaky_file,
                                                     tmp_path, capsys):
        from repro.obs import validate_chrome_trace
        trace_path = str(tmp_path / "trace.json")
        assert main(["check", leaky_file, "--trace", trace_path]) == 1
        with open(trace_path) as handle:
            assert validate_chrome_trace(json.load(handle)) == []

    def test_metrics_table_on_stderr(self, good_file, capsys):
        assert main(["check", good_file, "--metrics", "-"]) == 0
        err = capsys.readouterr().err
        assert "metrics:" in err
        assert "cache.context.misses" in err
        assert "diagnostics" not in err  # clean program: no codes counted

    def test_metrics_json_file(self, leaky_file, tmp_path, capsys):
        metrics_path = str(tmp_path / "metrics.json")
        assert main(["check", leaky_file, "--metrics", metrics_path]) == 1
        with open(metrics_path) as handle:
            snap = json.load(handle)
        assert snap["cache.context.misses"]["value"] == 1
        assert snap["diagnostics.V0302"]["value"] >= 1
        assert snap["check.function_seconds"]["type"] == "histogram"

    def test_disabled_instrumentation_records_nothing(self, good_file):
        from repro.pipeline import CheckSession
        session = CheckSession()
        with open(good_file) as handle:
            report = session.check(handle.read())
        assert report.ok
        assert session.telemetry.metrics.snapshot() == {}
        assert list(session.telemetry.tracer.events) == []
        snap = session.telemetry.snapshot()
        assert snap["metrics"] == {}
