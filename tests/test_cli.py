"""CLI tests for ``vaultc``."""

import os

import pytest

from repro.cli import main

GOOD = """
struct point { int x; int y; }
int main() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=1; y=2;};
    int v = pt.x + pt.y;
    Region.delete(rgn);
    return v;
}
"""

LEAKY = """
void main() {
    tracked(R) region rgn = Region.create();
}
"""


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "good.vlt"
    path.write_text(GOOD)
    return str(path)


@pytest.fixture
def leaky_file(tmp_path):
    path = tmp_path / "leaky.vlt"
    path.write_text(LEAKY)
    return str(path)


class TestCheck:
    def test_check_good(self, good_file, capsys):
        assert main(["check", good_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_leaky(self, leaky_file, capsys):
        assert main(["check", leaky_file]) == 1
        assert "V0302" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["check", "/nonexistent.vlt"]) == 1


class TestRun:
    def test_run_good(self, good_file, capsys):
        assert main(["run", good_file]) == 0
        assert "-> 3" in capsys.readouterr().out

    def test_run_rejects_leaky(self, leaky_file):
        assert main(["run", leaky_file]) == 1

    def test_run_unchecked_reports_leak(self, leaky_file, capsys):
        rc = main(["run", leaky_file, "--unchecked"])
        assert rc == 3
        assert "leak" in capsys.readouterr().out.lower()


class TestCompileEraseStats:
    def test_compile_to_stdout(self, good_file, capsys):
        assert main(["compile", good_file]) == 0
        out = capsys.readouterr().out
        assert "def main(" in out

    def test_compile_to_file(self, good_file, tmp_path):
        out_path = str(tmp_path / "out.py")
        assert main(["compile", good_file, "-o", out_path]) == 0
        assert os.path.exists(out_path)

    def test_erase(self, good_file, capsys):
        assert main(["erase", good_file]) == 0
        out = capsys.readouterr().out
        assert "tracked" not in out
        assert "R:" not in out

    def test_stats(self, good_file, capsys):
        assert main(["stats", good_file]) == 0
        out = capsys.readouterr().out
        assert "tokens" in out

    def test_mutate(self, good_file, capsys):
        assert main(["mutate", good_file, "--limit", "4"]) == 0
        out = capsys.readouterr().out
        assert "Vault checker" in out

    def test_fmt_prints_normalised_source(self, good_file, capsys):
        assert main(["fmt", good_file]) == 0
        out = capsys.readouterr().out
        from repro.syntax import parse_program, pretty
        assert pretty(parse_program(out)) == out

    def test_fmt_in_place(self, good_file, capsys):
        assert main(["fmt", good_file, "-i"]) == 0
        assert main(["check", good_file]) == 0

    def test_cfg_all(self, good_file, capsys):
        assert main(["cfg", good_file]) == 0
        out = capsys.readouterr().out
        assert "cfg main:" in out
        assert "(entry)" in out

    def test_cfg_single_function(self, good_file, capsys):
        assert main(["cfg", good_file, "-f", "main"]) == 0
        assert "cfg main:" in capsys.readouterr().out

    def test_cfg_unknown_function(self, good_file, capsys):
        assert main(["cfg", good_file, "-f", "nope"]) == 1

    def test_run_monitor_clean(self, good_file, capsys):
        assert main(["run", good_file, "--monitor"]) == 0

    def test_run_monitor_detects_leak(self, leaky_file, capsys):
        rc = main(["run", leaky_file, "--unchecked", "--monitor"])
        assert rc == 3
