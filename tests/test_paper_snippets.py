"""The paper's §2.1 snippets, verbatim (modulo our dialect spelling).

Each test corresponds to a code fragment printed in the paper's running
text, so a reader can line the reproduction up against the PDF.
"""

from repro.diagnostics import Code

from conftest import POINT, assert_ok, assert_rejected, codes


class TestSection21:
    def test_tracked_allocation_with_tied_guarded_int(self):
        # "tracked(K) point p = new tracked point {x=3; y=4;};
        #  K:int x = 4;" — the programmer ties the availability of x to
        # the availability of p.
        assert_ok(POINT + """
void f() {
    tracked(K) point p = new tracked point {x=3; y=4;};
    K:int x = 4;
    p.x++;
    int y = x + p.y;
    free(p);
}
""")

    def test_tied_guarded_int_dies_with_the_point(self):
        # "at those points at which the key is not in the set, the
        # program may access neither."
        assert_rejected(POINT + """
void f() {
    tracked(K) point p = new tracked point {x=3; y=4;};
    K:int x = 4;
    free(p);
    int y = x;
}
""", Code.KEY_NOT_HELD)

    def test_anonymous_tracked_local(self):
        # "tracked point p = new tracked point {x=3; y=4;}" — the key
        # is unnamed but still tracked.
        assert_ok(POINT + """
void f() {
    tracked point p = new tracked point {x=3; y=4;};
    p.x++;
    free(p);
}
""")

    def test_free_requires_held_key(self):
        # "the free operation ... requires that key K be in the
        # held-key set."
        assert_rejected(POINT + """
void consume(tracked point p) {
    free(p);
}
void f() {
    tracked(K) point p = new tracked point {x=3; y=4;};
    consume(p);
    free(p);
}
""", Code.KEY_NOT_HELD)

    def test_array2d_parameterized_type(self):
        # "type array2d<type T> = T[][];
        #  array2d<float> is the type of a two-dimensional array"
        assert_ok("""
type array2d<type T> = T[][];
float probe(array2d<float> grid, int i, int j) {
    return grid[i][j];
}
""")

    def test_guarded_int_alias(self):
        # "type guarded_int<key K> = K:int;" used with a same-key file.
        assert_ok("""
type guarded_int<key K> = K:int;
int foo(tracked(F) FILE f, guarded_int<F> gi) [F] {
    return gi;
}
void g() {
    tracked(F) FILE f = fopen("x");
    F:int gi = 7;
    int v = foo(f, gi);
    fclose(f);
}
""")

    def test_opt_int_plain_variant(self):
        # "variant opt_int ['NoInt | 'SomeInt(int)]"
        assert_ok("""
variant opt_int [ 'NoInt | 'SomeInt(int) ];
int get(opt_int v) {
    switch (v) {
        case 'NoInt:
            return 0;
        case 'SomeInt(n):
            return n;
    }
}
int main() {
    return get('SomeInt(5)) + get('NoInt);
}
""")


class TestDeterminism:
    def test_checker_verdicts_are_deterministic(self):
        from repro import check_source
        from repro.analysis import CORPUS
        from repro.analysis.mutation import generate_mutants
        program = CORPUS["region_pipeline"]
        for mutant in generate_mutants(program.source)[:6]:
            first = [c.value for c in check_source(mutant.source).codes()]
            second = [c.value for c in check_source(mutant.source).codes()]
            assert first == second

    def test_mutant_generation_is_deterministic(self):
        from repro.analysis import CORPUS
        from repro.analysis.mutation import generate_mutants
        program = CORPUS["file_copy"]
        a = [m.source for m in generate_mutants(program.source)]
        b = [m.source for m in generate_mutants(program.source)]
        assert a == b
