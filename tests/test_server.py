"""Tests for the check daemon: protocol, lifecycle, resilience.

Covers the acceptance promises of the serving layer:

* the wire protocol (framing, limits, malformed input);
* request coalescing (pure queue surgery, no sockets involved);
* warm-session reuse and the session registry (LRU, per-option keys);
* concurrent clients receiving byte-identical answers;
* client disconnect mid-request leaving the daemon healthy and
  leak-free (FD accounting via the helpers in test_resilience);
* SIGTERM / ``shutdown`` op / idle timeout all reaching the same
  idempotent cleanup (socket unlinked, pools closed);
* a daemon killed mid-request: the client transparently falls back
  in-process with byte-identical diagnostics, and a fresh daemon can
  re-bind over the stale socket;
* ``vaultc watch`` change detection (driven via ``Watcher.poll``,
  deterministically, without sleeps).
"""

from __future__ import annotations

import os
import signal
import socket as socket_mod
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path

import pytest

from repro import check_source
from repro.diagnostics import VaultError
from repro.obs import Telemetry
from repro.pipeline import fork_available
from repro.server import (CheckServer, DaemonClient, DaemonUnavailable,
                          ProtocolError, check_detailed, check_via_daemon,
                          encode_frame, normalize_options, recv_frame,
                          render_outcome, request_key, send_frame,
                          session_key, split_frames)
from repro.server.daemon import _Request, coalesce_group
from repro.server.watch import Watcher

from conftest import (REPO, ScriptedDaemon as _ScriptedDaemon,
                      ServerHandle as _ServerHandle, needs_unix,
                      spawn_daemon as _spawn_daemon,
                      start_server as _start_server, vaultc as _vaultc)
from test_resilience import _open_fds

pytestmark = pytest.mark.daemon

OK_SOURCE = (REPO / "examples" / "region_demo.vlt").read_text()
BAD_SOURCE = "void f() { Region.delete(r); }\n"
SYNTAX_CRASH = "int f( {"


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_frame_round_trip_over_socketpair(self):
        a, b = socket_mod.socketpair()
        try:
            send_frame(a, {"op": "ping", "n": 1})
            assert recv_frame(b) == {"op": "ping", "n": 1}
        finally:
            a.close()
            b.close()

    def test_recv_frame_none_on_clean_eof(self):
        a, b = socket_mod.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_is_protocol_error(self):
        a, b = socket_mod.socketpair()
        try:
            a.sendall(encode_frame({"op": "ping"})[:3])
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            b.close()

    def test_split_frames_handles_partial_and_multiple(self):
        blob = encode_frame({"a": 1}) + encode_frame({"b": 2})
        frames, rest = split_frames(blob + b"\x00\x00")
        assert frames == [{"a": 1}, {"b": 2}]
        assert rest == b"\x00\x00"
        frames, rest = split_frames(blob[:5])
        assert frames == [] and rest == blob[:5]

    def test_oversized_header_rejected(self):
        import struct
        with pytest.raises(ProtocolError):
            split_frames(struct.pack("!I", 1 << 31) + b"x")

    def test_non_object_payload_rejected(self):
        import struct
        payload = b"[1,2]"
        with pytest.raises(ProtocolError):
            split_frames(struct.pack("!I", len(payload)) + payload)

    def test_request_key_separates_source_filename_options(self):
        opts = normalize_options({})
        base = request_key("src", "f.vlt", opts)
        assert request_key("src", "f.vlt", opts) == base
        assert request_key("src2", "f.vlt", opts) != base
        assert request_key("src", "g.vlt", opts) != base
        assert request_key("src", "f.vlt",
                           normalize_options({"jobs": 4})) != base

    def test_session_key_ignores_non_session_options(self):
        assert session_key(normalize_options({})) == \
            session_key(normalize_options({"frobnicate": True}))
        assert session_key(normalize_options({"jobs": 2})) != \
            session_key(normalize_options({}))


# ---------------------------------------------------------------------------
# Coalescing (pure)
# ---------------------------------------------------------------------------

class TestCoalescing:
    @staticmethod
    def _req(key):
        return _Request(conn=None, key=key, payload={"key": key})

    def test_duplicates_grouped_order_preserved(self):
        queue = deque(self._req(k) for k in ["a", "b", "a", "c", "a"])
        group = coalesce_group(queue)
        assert [r.key for r in group] == ["a", "a", "a"]
        assert [r.key for r in queue] == ["b", "c"]

    def test_singleton_passes_through(self):
        queue = deque(self._req(k) for k in ["a", "b"])
        group = coalesce_group(queue)
        assert [r.key for r in group] == ["a"]
        assert [r.key for r in queue] == ["b"]


# ---------------------------------------------------------------------------
# In-thread daemon (helpers shared via conftest)
# ---------------------------------------------------------------------------

@needs_unix
class TestDaemon:
    def test_ping_and_version(self, tmp_path):
        handle = _start_server(tmp_path)
        try:
            with DaemonClient(handle.socket_path) as client:
                reply = client.ping()
                assert reply["pid"] == os.getpid()
        finally:
            handle.stop()

    def test_check_matches_in_process(self, tmp_path):
        handle = _start_server(tmp_path)
        try:
            with DaemonClient(handle.socket_path) as client:
                for source in (OK_SOURCE, BAD_SOURCE):
                    reply = client.check(source, "unit.vlt")
                    report = check_source(source, "unit.vlt")
                    assert reply["ok"] is True
                    assert reply["check_ok"] == report.ok
                    assert reply["render"] == report.render()
                    assert reply["errors"] == len(report.errors)
        finally:
            handle.stop()

    def test_warm_session_replays_second_check(self, tmp_path):
        handle = _start_server(tmp_path)
        try:
            with DaemonClient(handle.socket_path) as client:
                client.check(OK_SOURCE, "a.vlt")
                client.check(OK_SOURCE, "a.vlt")
                sessions = client.stats()["stats"]["sessions"]
            assert len(sessions) == 1
            assert sessions[0]["checks"] == 2
            assert sessions[0]["functions_replayed"] > 0
        finally:
            handle.stop()

    def test_distinct_options_get_distinct_sessions(self, tmp_path):
        handle = _start_server(tmp_path)
        try:
            with DaemonClient(handle.socket_path) as client:
                client.check(OK_SOURCE, "a.vlt", {"jobs": 1})
                client.check(OK_SOURCE, "a.vlt", {"units": ["region"]})
                assert len(client.stats()["stats"]["sessions"]) == 2
        finally:
            handle.stop()

    def test_session_registry_is_lru_bounded(self, tmp_path):
        handle = _start_server(tmp_path, session_limit=1)
        try:
            with DaemonClient(handle.socket_path) as client:
                client.check(OK_SOURCE, "a.vlt", {"jobs": 1})
                client.check(OK_SOURCE, "a.vlt", {"units": ["region"]})
                assert len(client.stats()["stats"]["sessions"]) == 1
        finally:
            handle.stop()

    def test_vault_error_surfaces_and_client_reraises(self, tmp_path):
        handle = _start_server(tmp_path)
        try:
            with DaemonClient(handle.socket_path) as client:
                reply = client.check(SYNTAX_CRASH, "broken.vlt")
            assert reply["ok"] is False
            assert reply["kind"] == "vault_error"
            with pytest.raises(VaultError):
                check_via_daemon(SYNTAX_CRASH, "broken.vlt",
                                 socket_path=handle.socket_path)
        finally:
            handle.stop()

    def test_unknown_op_is_bad_request(self, tmp_path):
        handle = _start_server(tmp_path)
        try:
            with DaemonClient(handle.socket_path) as client:
                reply = client.request({"op": "frobnicate"})
            assert reply == {"ok": False, "kind": "bad_request",
                             "error": "unknown op 'frobnicate'"}
        finally:
            handle.stop()

    def test_malformed_frame_drops_client_daemon_survives(self, tmp_path):
        handle = _start_server(tmp_path)
        try:
            raw = socket_mod.socket(socket_mod.AF_UNIX,
                                    socket_mod.SOCK_STREAM)
            raw.connect(handle.socket_path)
            import struct
            raw.sendall(struct.pack("!I", 1 << 30) + b"boom")
            reply = recv_frame(raw)
            # A structured protocol_error reply, then a clean close —
            # never a silent teardown.
            assert reply is not None and reply["kind"] == "protocol_error"
            assert "announces" in reply["error"]
            assert recv_frame(raw) is None      # we were dropped
            raw.close()
            with DaemonClient(handle.socket_path) as client:
                assert client.ping()["ok"] is True
            snapshot = handle.server.telemetry.metrics.snapshot()
            assert snapshot["server.protocol_errors"]["value"] == 1
        finally:
            handle.stop()

    def test_concurrent_clients_identical_answers(self, tmp_path):
        handle = _start_server(tmp_path)
        expected = check_source(OK_SOURCE, "conc.vlt").render()
        replies = []
        errors = []

        def _one():
            try:
                with DaemonClient(handle.socket_path) as client:
                    replies.append(client.check(OK_SOURCE, "conc.vlt"))
            except Exception as exc:             # noqa: BLE001
                errors.append(exc)

        try:
            threads = [threading.Thread(target=_one) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30)
            assert not errors
            assert len(replies) == 3
            for reply in replies:
                assert reply["ok"] is True and reply["render"] == expected
            snapshot = handle.server.telemetry.metrics.snapshot()
            assert snapshot["server.requests"]["value"] >= 3
        finally:
            handle.stop()

    def test_client_disconnect_mid_request_leaves_daemon_healthy(
            self, tmp_path):
        if _open_fds() is None:
            pytest.skip("needs /proc/self/fd")
        handle = _start_server(tmp_path)
        expected_errors = len(check_source(BAD_SOURCE, "next.vlt").errors)
        try:
            baseline = None
            for round_no in range(3):
                rude = socket_mod.socket(socket_mod.AF_UNIX,
                                         socket_mod.SOCK_STREAM)
                rude.connect(handle.socket_path)
                send_frame(rude, {"op": "check", "source": OK_SOURCE,
                                  "filename": "gone.vlt"})
                rude.close()                     # hang up before the reply
                with DaemonClient(handle.socket_path) as client:
                    reply = client.check(BAD_SOURCE, "next.vlt")
                    assert reply["ok"] is True
                    assert reply["errors"] == expected_errors
                if round_no == 0:
                    baseline = _open_fds()
            # Steady state: rude disconnect cycles must not grow fds.
            time.sleep(0.1)
            assert len(_open_fds()) <= len(baseline)
        finally:
            handle.stop()

    def test_shutdown_op_stops_and_unlinks(self, tmp_path):
        handle = _start_server(tmp_path)
        with DaemonClient(handle.socket_path) as client:
            assert client.shutdown()["stopping"] is True
        handle.thread.join(10)
        assert not handle.thread.is_alive()
        assert not os.path.exists(handle.socket_path)
        handle.server.close()                    # idempotent

    def test_idle_timeout_exits_on_its_own(self, tmp_path):
        handle = _start_server(tmp_path, idle_timeout=0.3)
        handle.thread.join(15)
        assert not handle.thread.is_alive()
        assert not os.path.exists(handle.socket_path)
        kinds = [e.kind for e in handle.server.telemetry.events.records]
        assert "server_idle_exit" in kinds and "server_stop" in kinds

    def test_server_start_stop_events_and_counters(self, tmp_path):
        handle = _start_server(tmp_path)
        try:
            with DaemonClient(handle.socket_path) as client:
                client.ping()
        finally:
            handle.stop()
        events = handle.server.telemetry.events
        assert len(events.by_kind("server_start")) == 1
        assert len(events.by_kind("server_stop")) == 1
        snapshot = handle.server.telemetry.metrics.snapshot()
        # Pre-registered: explicit zeros even for untouched counters.
        assert snapshot["server.coalesced"]["value"] == 0
        assert snapshot["server.connections"]["value"] >= 1

    def test_stale_socket_is_replaced_live_socket_refused(self, tmp_path):
        sock = str(tmp_path / "stale.sock")
        dead = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
        dead.bind(sock)
        dead.close()                             # file left behind, no listener
        assert os.path.exists(sock)
        server = CheckServer(socket_path=sock)
        server.bind()                            # stale file silently replaced
        try:
            with pytest.raises(VaultError, match="already listening"):
                CheckServer(socket_path=sock).bind()
        finally:
            server.close()
        assert not os.path.exists(sock)

    @pytest.mark.skipif(not fork_available(), reason="needs os.fork")
    def test_idle_worker_pools_are_reaped(self, tmp_path):
        handle = _start_server(tmp_path, pool_linger=0.0)
        try:
            with DaemonClient(handle.socket_path) as client:
                client.check(OK_SOURCE, "p.vlt",
                             {"jobs": 2, "break_even": 0.0})
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    sessions = client.stats()["stats"]["sessions"]
                    if sessions and not sessions[0]["pool_alive"]:
                        break
                    time.sleep(0.05)
                assert sessions and not sessions[0]["pool_alive"]
        finally:
            handle.stop()

    def test_no_fd_leak_across_daemon_lifecycle(self, tmp_path):
        if _open_fds() is None:
            pytest.skip("needs /proc/self/fd")
        before = _open_fds()
        handle = _start_server(tmp_path / "fd")
        with DaemonClient(handle.socket_path) as client:
            client.check(OK_SOURCE, "fd.vlt")
        handle.stop()
        assert _open_fds() == before


# ---------------------------------------------------------------------------
# Subprocess daemon: signals, death mid-request, CLI byte identity
# ---------------------------------------------------------------------------

@needs_unix
@pytest.mark.slow
class TestDaemonProcess:
    def test_sigterm_exits_cleanly_and_unlinks(self, tmp_path):
        sock = str(tmp_path / "term.sock")
        proc = _spawn_daemon(sock)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=20) == 0
        assert not os.path.exists(sock)

    def test_killed_daemon_mid_request_falls_back_byte_identical(
            self, tmp_path):
        sock = str(tmp_path / "die.sock")
        proc = _spawn_daemon(sock, test_ops=True)
        fds_before = _open_fds()
        # The daemon dies while our request is in flight...
        with pytest.raises(DaemonUnavailable):
            with DaemonClient(sock) as client:
                client.request({"op": "check", "source": OK_SOURCE,
                                "filename": "die.vlt", "test_die": True})
        assert proc.wait(timeout=20) == 86
        # ...and the high-level path silently falls back in-process,
        # with the exact same bytes the daemon would have produced.
        outcome = check_detailed(OK_SOURCE, "die.vlt", socket_path=sock)
        assert outcome.via_daemon is False
        assert outcome.render == check_source(OK_SOURCE, "die.vlt").render()
        if fds_before is not None:
            assert _open_fds() == fds_before, "client leaked fds"
        # The SIGKILL-style death left a stale socket file; a fresh
        # daemon must be able to claim it.
        assert os.path.exists(sock)
        server = CheckServer(socket_path=sock)
        server.bind()
        server.close()
        assert not os.path.exists(sock)

    def test_cli_daemon_output_byte_identical(self, tmp_path):
        sock = str(tmp_path / "cli.sock")
        proc = _spawn_daemon(sock)
        try:
            for rel in ("examples/region_demo.vlt",
                        "src/repro/stdlib/vault/region.vlt"):
                plain = _vaultc(["check", rel])
                daemon = _vaultc(["check", rel, "--daemon", sock])
                assert daemon.returncode == plain.returncode
                assert daemon.stdout == plain.stdout
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=20)

    def test_cli_daemon_flag_falls_back_without_daemon(self, tmp_path):
        sock = str(tmp_path / "absent.sock")
        plain = _vaultc(["check", "examples/region_demo.vlt"])
        fallback = _vaultc(["check", "examples/region_demo.vlt",
                            "--daemon", sock])
        assert fallback.returncode == plain.returncode == 0
        assert fallback.stdout == plain.stdout

    def test_cli_syntax_error_identical_via_daemon(self, tmp_path):
        bad = tmp_path / "broken.vlt"
        bad.write_text(SYNTAX_CRASH)
        sock = str(tmp_path / "syn.sock")
        proc = _spawn_daemon(sock)
        try:
            plain = _vaultc(["check", str(bad)])
            daemon = _vaultc(["check", str(bad), "--daemon", sock])
            assert plain.returncode == daemon.returncode == 1
            assert daemon.stdout == plain.stdout
            assert daemon.stderr == plain.stderr
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=20)

    def test_idle_timeout_subprocess(self, tmp_path):
        sock = str(tmp_path / "idle.sock")
        proc = _spawn_daemon(sock, "--idle-timeout", "0.5")
        assert proc.wait(timeout=30) == 0
        assert not os.path.exists(sock)


# ---------------------------------------------------------------------------
# vaultc watch
# ---------------------------------------------------------------------------

class TestWatcher:
    def test_first_poll_checks_everything_sorted(self, tmp_path):
        (tmp_path / "a.vlt").write_text(OK_SOURCE)
        (tmp_path / "b.vlt").write_text(BAD_SOURCE)
        watcher = Watcher(str(tmp_path), socket_path=None)
        outcomes = watcher.poll()
        assert [name for name, _ in outcomes] == ["a.vlt", "b.vlt"]
        assert outcomes[0][1].ok and not outcomes[1][1].ok

    def test_unchanged_tree_polls_empty(self, tmp_path):
        (tmp_path / "a.vlt").write_text(OK_SOURCE)
        watcher = Watcher(str(tmp_path), socket_path=None)
        watcher.poll()
        assert watcher.poll() == []

    def test_modified_file_rechecked(self, tmp_path):
        path = tmp_path / "a.vlt"
        path.write_text(OK_SOURCE)
        watcher = Watcher(str(tmp_path), socket_path=None)
        watcher.poll()
        path.write_text(BAD_SOURCE)
        os.utime(path, (time.time() + 2, time.time() + 2))
        outcomes = watcher.poll()
        assert [name for name, _ in outcomes] == ["a.vlt"]
        assert not outcomes[0][1].ok

    def test_deleted_file_forgotten_then_rechecked_on_return(self, tmp_path):
        path = tmp_path / "a.vlt"
        path.write_text(OK_SOURCE)
        watcher = Watcher(str(tmp_path), socket_path=None)
        watcher.poll()
        path.unlink()
        assert watcher.poll() == []
        path.write_text(OK_SOURCE)
        assert [name for name, _ in watcher.poll()] == ["a.vlt"]

    def test_render_outcome_matches_cli_format(self):
        from repro.server import CheckOutcome
        report = check_source(BAD_SOURCE, "b.vlt")
        outcome = CheckOutcome(ok=False, render=report.render(),
                               errors=len(report.errors), via_daemon=False)
        assert render_outcome("b.vlt", outcome) == \
            f"{report.render()}\nb.vlt: {len(report.errors)} error(s)"
        ok_outcome = CheckOutcome(ok=True, render="", errors=0,
                                  via_daemon=True)
        assert render_outcome("a.vlt", ok_outcome) == \
            "a.vlt: OK (protocols verified)"

    @needs_unix
    def test_watch_routes_through_daemon(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "a.vlt").write_text(OK_SOURCE)
        handle = _start_server(tmp_path)
        try:
            watcher = Watcher(str(tmp_path / "src"),
                              socket_path=handle.socket_path)
            outcomes = watcher.poll()
            assert outcomes[0][1].via_daemon is True
            assert outcomes[0][1].ok
        finally:
            handle.stop()


# ---------------------------------------------------------------------------
# Telemetry op, slow traces, Prometheus file, vaultc top
# ---------------------------------------------------------------------------

@needs_unix
class TestTelemetryOp:
    def test_ping_carries_uptime_and_socket(self, tmp_path):
        handle = _start_server(tmp_path)
        try:
            with DaemonClient(handle.socket_path) as client:
                reply = client.ping()
            assert reply["socket"] == handle.socket_path
            assert reply["uptime_seconds"] >= 0
        finally:
            handle.stop()

    def test_telemetry_round_trip(self, tmp_path):
        handle = _start_server(tmp_path)
        try:
            with DaemonClient(handle.socket_path) as client:
                client.ping()
                client.check(OK_SOURCE, "a.vlt")
                client.check(OK_SOURCE, "a.vlt")
                tel = client.telemetry()
            assert tel["ok"] is True
            assert tel["pid"] == os.getpid()
            assert tel["socket"] == handle.socket_path
            assert tel["uptime_seconds"] >= 0
            assert tel["queue_depth"] == 0
            counters = tel["counters"]
            assert counters["server.checks"] == 2
            assert counters["server.pings"] == 1
            assert counters["server.telemetry_requests"] == 1
            # Pre-registered counters report explicit zeros.
            assert counters["server.slow_requests"] == 0
            q = tel["quantiles"]["server.check_seconds"]
            assert q["count"] == 2
            assert 0 <= q["p50"] <= q["p95"] <= q["p99"]
            assert len(tel["sessions"]) == 1
            assert tel["sessions"][0]["checks"] == 2
            assert tel["timeseries"]["capacity"] > 0
            assert tel["event_counts"]["server_start"] == 1
        finally:
            handle.stop()

    def test_server_start_event_payload(self, tmp_path):
        from repro.server.protocol import PROTOCOL_VERSION
        handle = _start_server(tmp_path)
        try:
            (event,) = handle.server.telemetry.events.by_kind("server_start")
            assert event.fields["pid"] == os.getpid()
            assert event.fields["socket"] == handle.socket_path
            assert event.fields["version"] == PROTOCOL_VERSION
        finally:
            handle.stop()

    def test_slow_request_lands_one_valid_trace(self, tmp_path):
        from repro.obs import validate_chrome_trace
        traces = tmp_path / "traces"
        handle = _start_server(tmp_path, enable_test_ops=True,
                               slow_ms=1000.0, trace_dir=str(traces),
                               trace_keep=2)
        try:
            with DaemonClient(handle.socket_path) as client:
                # Fast requests drain the tracer but write nothing...
                client.check(OK_SOURCE, "fast.vlt")
                # ...the forced-slow one lands exactly one trace file.
                reply = client.request(
                    {"op": "check", "source": OK_SOURCE,
                     "filename": "slow.vlt", "test_sleep": 1.2})
                assert reply["ok"] is True
                tel = client.telemetry()
            files = sorted(traces.glob("slow-*.json"))
            assert len(files) == 1
            import json
            payload = json.loads(files[0].read_text())
            assert validate_chrome_trace(payload) == []
            names = [e.get("name") for e in payload["traceEvents"]]
            assert "server.request" in names
            assert tel["counters"]["server.slow_requests"] == 1
            assert tel["slow_traces"]["files"] == 1
            events = handle.server.telemetry.events.by_kind("slow_request")
            assert len(events) == 1
            assert events[0].fields["filename"] == "slow.vlt"
        finally:
            handle.stop()

    def test_trace_ring_keeps_newest_n(self, tmp_path):
        traces = tmp_path / "traces"
        handle = _start_server(tmp_path, enable_test_ops=True,
                               slow_ms=0.0, trace_dir=str(traces),
                               trace_keep=2)
        try:
            with DaemonClient(handle.socket_path) as client:
                for i in range(5):
                    client.check(OK_SOURCE, f"f{i}.vlt")
            assert len(list(traces.glob("slow-*.json"))) == 2
        finally:
            handle.stop()

    def test_prom_file_rewritten_and_valid(self, tmp_path):
        from repro.obs import validate_exposition
        prom = tmp_path / "metrics.prom"
        handle = _start_server(tmp_path, sample_interval=0.05,
                               prom_file=str(prom))
        try:
            with DaemonClient(handle.socket_path) as client:
                client.check(OK_SOURCE, "a.vlt")
            deadline = time.monotonic() + 10
            while not prom.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert prom.exists(), "prom file never written"
            text = prom.read_text()
            assert validate_exposition(text) == []
            assert "vaultc_server_checks_total" in text
            assert "vaultc_uptime_seconds" in text
        finally:
            handle.stop()

    def test_timeseries_samples_accumulate(self, tmp_path):
        handle = _start_server(tmp_path, sample_interval=0.05)
        try:
            with DaemonClient(handle.socket_path) as client:
                client.check(OK_SOURCE, "a.vlt")
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    tel = client.telemetry()
                    if len(tel["timeseries"]["samples"]) >= 2:
                        break
                    time.sleep(0.05)
            assert len(tel["timeseries"]["samples"]) >= 2
        finally:
            handle.stop()


class TestTopRenderer:
    def _reply(self):
        return {
            "ok": True, "pid": 1234, "version": 1, "socket": "/tmp/d.sock",
            "uptime_seconds": 3723.0, "queue_depth": 1, "connections": 2,
            "session_limit": 8,
            "counters": {"server.checks": 10, "server.requests": 12,
                         "cache.shared.memory.hits": 3,
                         "cache.shared.memory.misses": 1,
                         "server.slow_requests": 1},
            "quantiles": {"server.check_seconds":
                          {"count": 10, "sum": 1.0, "p50": 0.01,
                           "p95": 0.05, "p99": 0.09}},
            "sessions": [{"key": "abc123", "checks": 10,
                          "functions_replayed": 40, "pool_alive": True,
                          "idle_seconds": 5.0}],
            "event_counts": {"server_start": 1},
            "timeseries": {"interval": 5.0, "capacity": 120,
                           "samples": [{"time": 0.0, "dt": 5.0,
                                        "rates": {"server.requests": 2.4,
                                                  "server.checks": 2.0},
                                        "gauges": {}, "quantiles": {}}]},
            "slow_traces": {"slow_ms": 500.0, "directory": "/tmp/traces",
                            "keep": 32, "files": 1},
        }

    def test_render_top_mentions_everything(self):
        from repro.server import render_top
        screen = render_top(self._reply())
        assert "pid 1234" in screen
        assert "up 1h02m03s" in screen
        assert "requests/s     2.40" in screen
        assert "p50     10.0ms" in screen
        assert "server.checks" in screen
        assert "memory   hit rate   75.0%" in screen
        assert "abc123" in screen
        assert "slow traces  threshold 500ms" in screen

    def test_render_top_survives_minimal_reply(self):
        from repro.server import render_top
        screen = render_top({"ok": True})
        assert "vaultc daemon" in screen

    @needs_unix
    def test_cli_top_once_json(self, tmp_path):
        sock = str(tmp_path / "top.sock")
        proc = _spawn_daemon(sock)
        try:
            with DaemonClient(sock) as client:
                client.check(OK_SOURCE, "a.vlt")
            result = _vaultc(["top", sock, "--once", "--json"])
            assert result.returncode == 0, result.stderr
            import json
            reply = json.loads(result.stdout)
            assert reply["counters"]["server.checks"] == 1
            assert "server.check_seconds" in reply["quantiles"]
            plain = _vaultc(["top", sock, "--once"])
            assert plain.returncode == 0, plain.stderr
            assert "vaultc daemon" in plain.stdout
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=20)

    def test_cli_top_unreachable_daemon_fails_cleanly(self, tmp_path):
        if not hasattr(socket_mod, "AF_UNIX"):
            pytest.skip("needs AF_UNIX sockets")
        result = _vaultc(["top", str(tmp_path / "absent.sock"), "--once"])
        assert result.returncode == 1
        assert "vaultc top:" in result.stderr

    def test_render_top_shows_queue_bound_drain_and_breaker(self):
        from repro.server import render_top
        reply = self._reply()
        reply["queue_limit"] = 64
        reply["draining"] = True
        reply["shared_cache"] = {"<default>": {"tiers": [
            {"tier": "memory"},
            {"tier": "remote", "breaker_open": True,
             "retry_in_seconds": 12.5,
             "last_error": "connection refused"}]}}
        screen = render_top(reply)
        assert "queue 1/64" in screen
        assert "DRAINING" in screen
        assert "breaker OPEN, retry in 12.5s" in screen
        assert "connection refused" in screen


# ---------------------------------------------------------------------------
# Admission control, deadlines, slow-loris reaping, drain
# ---------------------------------------------------------------------------

@needs_unix
class TestAdmissionControl:
    def test_burst_past_queue_bound_sheds_with_busy(self, tmp_path):
        handle = _start_server(tmp_path, max_queue=2,
                               enable_test_ops=True)
        try:
            raw = socket_mod.socket(socket_mod.AF_UNIX,
                                    socket_mod.SOCK_STREAM)
            raw.connect(handle.socket_path)
            raw.settimeout(30)
            # Occupy the loop first so the burst below is ingested in
            # one readable event once the sleeper finishes...
            raw.sendall(encode_frame({"op": "check", "source": OK_SOURCE,
                                      "filename": "sleeper.vlt",
                                      "test_sleep": 0.4, "id": 99}))
            time.sleep(0.15)
            # ... then 5 distinct checks, ids 0..4, in a single write:
            # 2 queue, 3 must shed.
            blob = b"".join(
                encode_frame({"op": "check", "source": OK_SOURCE,
                              "filename": f"burst{i}.vlt", "id": i})
                for i in range(5))
            raw.sendall(blob)
            sleeper = recv_frame(raw)
            assert sleeper["ok"] is True and sleeper["id"] == 99
            replies = [recv_frame(raw) for _ in range(5)]
            raw.close()
            busy = [r for r in replies if r.get("kind") == "busy"]
            ok = [r for r in replies if r.get("ok") is True]
            assert len(busy) == 3 and len(ok) == 2
            assert sorted(r["id"] for r in busy) == [2, 3, 4]
            assert sorted(r["id"] for r in ok) == [0, 1]
            for r in busy:
                assert r["queue_depth"] == 2
                assert 50 <= r["retry_after_ms"] <= 5000
            snapshot = handle.server.telemetry.metrics.snapshot()
            assert snapshot["server.shed"]["value"] == 3
            events = handle.server.telemetry.events.by_kind("request_shed")
            assert len(events) == 1          # edge-triggered, not per shed
        finally:
            handle.stop()

    def test_expired_deadline_answered_not_checked(self, tmp_path):
        handle = _start_server(tmp_path)
        try:
            raw = socket_mod.socket(socket_mod.AF_UNIX,
                                    socket_mod.SOCK_STREAM)
            raw.connect(handle.socket_path)
            raw.settimeout(30)
            send_frame(raw, {"op": "check", "source": OK_SOURCE,
                             "filename": "late.vlt", "deadline_ms": 0,
                             "id": "req-1"})
            reply = recv_frame(raw)
            raw.close()
            assert reply["ok"] is False
            assert reply["kind"] == "deadline_exceeded"
            assert reply["id"] == "req-1"
            assert reply["waited_ms"] >= 0
            snapshot = handle.server.telemetry.metrics.snapshot()
            assert snapshot["server.deadline_exceeded"]["value"] == 1
            assert snapshot["server.checks"]["value"] == 0
        finally:
            handle.stop()

    def test_bad_deadline_type_is_bad_request(self, tmp_path):
        handle = _start_server(tmp_path)
        try:
            with DaemonClient(handle.socket_path) as client:
                reply = client.request(
                    {"op": "check", "source": OK_SOURCE,
                     "filename": "a.vlt", "deadline_ms": "soon"})
            assert reply["kind"] == "bad_request"
        finally:
            handle.stop()

    def test_generous_deadline_checks_normally(self, tmp_path):
        handle = _start_server(tmp_path)
        try:
            with DaemonClient(handle.socket_path) as client:
                reply = client.check(OK_SOURCE, "ok.vlt",
                                     deadline_ms=60_000, req_id=7)
            assert reply["ok"] is True and reply["id"] == 7
        finally:
            handle.stop()

    def test_slow_loris_is_reaped_healthy_client_unaffected(
            self, tmp_path):
        handle = _start_server(tmp_path, io_timeout=0.2)
        try:
            loris = socket_mod.socket(socket_mod.AF_UNIX,
                                      socket_mod.SOCK_STREAM)
            loris.connect(handle.socket_path)
            loris.sendall(b"\x00\x00")       # half a header, then nothing
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                snapshot = handle.server.telemetry.metrics.snapshot()
                if snapshot["server.conns_reaped"]["value"] >= 1:
                    break
                time.sleep(0.05)
            assert snapshot["server.conns_reaped"]["value"] == 1
            loris.settimeout(5)
            assert loris.recv(1) == b""      # we were dropped
            loris.close()
            with DaemonClient(handle.socket_path) as client:
                assert client.check(OK_SOURCE, "fine.vlt")["ok"] is True
            events = handle.server.telemetry.events.by_kind("conn_reaped")
            assert len(events) == 1
            assert events[0].fields["pending_in"] == 2
        finally:
            handle.stop()

    def test_health_op_reports_load_and_drain_state(self, tmp_path):
        handle = _start_server(tmp_path, max_queue=7)
        try:
            with DaemonClient(handle.socket_path) as client:
                reply = client.health()
            assert reply["ok"] is True
            assert reply["pid"] == os.getpid()
            assert reply["queue_depth"] == 0
            assert reply["queue_limit"] == 7
            assert reply["draining"] is False
            assert reply["uptime_seconds"] >= 0
            snapshot = handle.server.telemetry.metrics.snapshot()
            assert snapshot["server.health_requests"]["value"] == 1
        finally:
            handle.stop()

    def test_drain_finishes_inflight_sheds_queued_then_exits(
            self, tmp_path):
        handle = _start_server(tmp_path, enable_test_ops=True)
        try:
            raw = socket_mod.socket(socket_mod.AF_UNIX,
                                    socket_mod.SOCK_STREAM)
            raw.connect(handle.socket_path)
            raw.settimeout(30)
            # Two distinct checks in one write: the first holds the
            # loop for ~0.6s, the second waits in the queue.
            raw.sendall(
                encode_frame({"op": "check", "source": OK_SOURCE,
                              "filename": "inflight.vlt",
                              "test_sleep": 0.6, "id": 1})
                + encode_frame({"op": "check", "source": OK_SOURCE,
                                "filename": "queued.vlt", "id": 2}))
            time.sleep(0.2)                  # first check is executing
            handle.server.request_drain()
            first = recv_frame(raw)
            second = recv_frame(raw)
            assert first["ok"] is True and first["id"] == 1
            assert second["kind"] == "draining" and second["id"] == 2
            raw.close()
            handle.thread.join(15)
            assert not handle.thread.is_alive()
            assert not os.path.exists(handle.socket_path)
            snapshot = handle.server.telemetry.metrics.snapshot()
            assert snapshot["server.drained"]["value"] == 1
            assert len(handle.server.telemetry.events.by_kind(
                "server_drain")) == 1
        finally:
            handle.stop()

    def test_shutdown_op_with_drain_flag(self, tmp_path):
        handle = _start_server(tmp_path)
        with DaemonClient(handle.socket_path) as client:
            reply = client.shutdown(drain=True)
            assert reply["stopping"] is True and reply["draining"] is True
        handle.thread.join(15)
        assert not handle.thread.is_alive()
        assert not os.path.exists(handle.socket_path)
        handle.server.close()

    def test_check_during_drain_gets_draining_reply(self, tmp_path):
        # Exercise the _on_frame drain branch directly: flag set, then
        # a check arrives before the loop's drain pass completes.
        handle = _start_server(tmp_path, enable_test_ops=True)
        try:
            raw = socket_mod.socket(socket_mod.AF_UNIX,
                                    socket_mod.SOCK_STREAM)
            raw.connect(handle.socket_path)
            raw.settimeout(30)
            raw.sendall(
                encode_frame({"op": "check", "source": OK_SOURCE,
                              "filename": "hold.vlt",
                              "test_sleep": 0.5, "id": 1}))
            time.sleep(0.15)
            handle.server.request_drain()
            # Lands while the sleeper executes; the drain endgame's
            # final ingest pass must answer it with ``draining``.
            raw.sendall(
                encode_frame({"op": "check", "source": OK_SOURCE,
                              "filename": "straggler.vlt", "id": 2}))
            replies = [recv_frame(raw), recv_frame(raw)]
            raw.close()
            by_id = {r["id"]: r for r in replies}
            assert by_id[1]["ok"] is True
            assert by_id[2]["kind"] == "draining"
        finally:
            handle.stop()


# ---------------------------------------------------------------------------
# Client resilience: timeouts, retry, backoff
# ---------------------------------------------------------------------------

@needs_unix
@pytest.mark.slow
class TestClientResilience:
    def test_backoff_delay_grows_exponentially(self):
        from repro.server.client import BACKOFF_BASE_SECONDS, backoff_delay
        delays = [backoff_delay(a, lambda: 1.0) for a in range(4)]
        assert delays == [BACKOFF_BASE_SECONDS * 2 ** a for a in range(4)]
        assert backoff_delay(3, lambda: 0.0) == 0.0   # full jitter floor

    def test_busy_reply_retried_with_hint_then_succeeds(self, tmp_path):
        report = check_source(OK_SOURCE, "b.vlt")
        daemon = _ScriptedDaemon(str(tmp_path / "s.sock"), [
            {"ok": False, "kind": "busy", "retry_after_ms": 100},
            {"ok": True, "check_ok": report.ok, "render": report.render(),
             "errors": len(report.errors)},
        ])
        sleeps = []
        try:
            outcome = check_via_daemon(
                OK_SOURCE, "b.vlt", socket_path=daemon.path,
                _sleep=sleeps.append, _rng=lambda: 1.0)
        finally:
            daemon.close()
        assert outcome is not None and outcome.via_daemon is True
        assert outcome.render == report.render()
        assert sleeps == [0.1]               # honoured the hint, jittered
        assert len(daemon.requests) == 2

    def test_transport_failure_retried_then_succeeds(self, tmp_path):
        report = check_source(OK_SOURCE, "t.vlt")
        daemon = _ScriptedDaemon(str(tmp_path / "s.sock"), [
            "close",                         # EOF without a reply
            {"ok": True, "check_ok": report.ok, "render": report.render(),
             "errors": len(report.errors)},
        ])
        sleeps = []
        try:
            outcome = check_via_daemon(
                OK_SOURCE, "t.vlt", socket_path=daemon.path,
                _sleep=sleeps.append, _rng=lambda: 1.0)
        finally:
            daemon.close()
        assert outcome is not None and outcome.render == report.render()
        assert len(sleeps) == 1 and sleeps[0] > 0

    def test_hung_daemon_times_out_and_falls_back_bounded(self, tmp_path):
        daemon = _ScriptedDaemon(str(tmp_path / "s.sock"),
                                 ["hang", "hang", "hang"])
        started = time.monotonic()
        try:
            outcome = check_via_daemon(
                OK_SOURCE, "h.vlt", socket_path=daemon.path,
                read_timeout=0.2, _sleep=lambda s: None)
        finally:
            daemon.close()
        elapsed = time.monotonic() - started
        assert outcome is None               # caller falls back in-process
        assert elapsed < 5, "a hung daemon must not wedge the client"

    def test_draining_reply_falls_back_without_retry(self, tmp_path):
        daemon = _ScriptedDaemon(str(tmp_path / "s.sock"), [
            {"ok": False, "kind": "draining", "error": "going away"},
        ])
        sleeps = []
        try:
            outcome = check_via_daemon(
                OK_SOURCE, "d.vlt", socket_path=daemon.path,
                _sleep=sleeps.append)
        finally:
            daemon.close()
        assert outcome is None and sleeps == []
        assert len(daemon.requests) == 1

    def test_busy_budget_exhausted_falls_back(self, tmp_path):
        busy = {"ok": False, "kind": "busy", "retry_after_ms": 1}
        daemon = _ScriptedDaemon(str(tmp_path / "s.sock"),
                                 [busy, busy, busy, busy])
        try:
            outcome = check_via_daemon(
                OK_SOURCE, "x.vlt", socket_path=daemon.path,
                retries=2, _sleep=lambda s: None)
        finally:
            daemon.close()
        assert outcome is None
        assert len(daemon.requests) == 3     # 1 try + 2 retries, bounded

    def test_check_detailed_identical_after_fallback(self, tmp_path):
        daemon = _ScriptedDaemon(str(tmp_path / "s.sock"),
                                 ["close", "close", "close"])
        try:
            outcome = check_detailed(OK_SOURCE, "f.vlt",
                                     socket_path=daemon.path)
        finally:
            daemon.close()
        assert outcome.via_daemon is False
        assert outcome.render == check_source(OK_SOURCE, "f.vlt").render()


# ---------------------------------------------------------------------------
# Supervision
# ---------------------------------------------------------------------------

class _FakeClock:
    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def monotonic(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class _FakeChild:
    def __init__(self, rc, lived, clock):
        self.rc = rc
        self.lived = lived
        self._clock = clock
        self.signals = []

    def wait(self):
        self._clock.now += self.lived
        return self.rc

    def poll(self):
        return self.rc

    def send_signal(self, signum):
        self.signals.append(signum)


class TestSupervisorPolicy:
    @staticmethod
    def _supervisor(children, clock, **kwargs):
        from repro.server import Supervisor
        import io
        queue = list(children)

        def spawn(_args):
            return queue.pop(0)

        return Supervisor(["daemon"], spawn=spawn, sleep=clock.sleep,
                          monotonic=clock.monotonic,
                          stderr=io.StringIO(), **kwargs)

    def test_backoff_doubles_per_quick_crash(self):
        clock = _FakeClock()
        children = [_FakeChild(1, 0.0, clock) for _ in range(3)] \
            + [_FakeChild(0, 0.0, clock)]
        sup = self._supervisor(children, clock)
        assert sup._run_loop() == 0
        assert clock.sleeps == [0.5, 1.0, 2.0]
        assert sup.respawns == 3

    def test_healthy_child_resets_backoff_streak(self):
        clock = _FakeClock()
        children = [_FakeChild(1, 0.0, clock),
                    _FakeChild(1, 0.0, clock),
                    _FakeChild(1, 60.0, clock),   # healthy, then crashes
                    _FakeChild(0, 0.0, clock)]
        sup = self._supervisor(children, clock)
        assert sup._run_loop() == 0
        # Third respawn delay is back at the base after the healthy run.
        assert clock.sleeps == [0.5, 1.0, 0.5]

    def test_rate_limit_gives_up(self):
        clock = _FakeClock()
        children = [_FakeChild(1, 0.0, clock) for _ in range(10)]
        sup = self._supervisor(children, clock, max_respawns=3,
                               respawn_window=1e9, backoff_base=0.0)
        assert sup._run_loop() == 1
        assert sup.respawns == 3             # then the window said no
        events = sup.telemetry.events.by_kind("daemon_giveup")
        assert len(events) == 1

    def test_clean_exit_ends_supervision(self):
        clock = _FakeClock()
        sup = self._supervisor([_FakeChild(0, 1.0, clock)], clock)
        assert sup._run_loop() == 0
        assert clock.sleeps == [] and sup.respawns == 0

    def test_respawn_event_payload(self):
        clock = _FakeClock()
        sup = self._supervisor([_FakeChild(9, 0.0, clock),
                                _FakeChild(0, 0.0, clock)], clock)
        sup._run_loop()
        (event,) = sup.telemetry.events.by_kind("daemon_respawn")
        assert event.fields["rc"] == 9
        assert event.fields["respawn"] == 1
        assert event.fields["delay_seconds"] == 0.5


@needs_unix
@pytest.mark.slow
class TestSupervisedDaemon:
    def test_supervised_daemon_survives_sigkill(self, tmp_path):
        sock = str(tmp_path / "sup.sock")
        proc = _spawn_daemon(sock, "--supervise")
        try:
            with DaemonClient(sock) as client:
                first_pid = client.ping()["pid"]
            assert first_pid != proc.pid     # the daemon is a child
            os.kill(first_pid, signal.SIGKILL)
            deadline = time.monotonic() + 30
            second_pid = None
            while time.monotonic() < deadline:
                try:
                    with DaemonClient(sock) as client:
                        second_pid = client.ping()["pid"]
                    if second_pid != first_pid:
                        break
                except DaemonUnavailable:
                    pass
                time.sleep(0.1)
            assert second_pid is not None and second_pid != first_pid, \
                "daemon was not respawned after SIGKILL"
            outcome = check_via_daemon(OK_SOURCE, "sup.vlt",
                                       socket_path=sock)
            assert outcome is not None and outcome.via_daemon is True
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0


# ---------------------------------------------------------------------------
# Wire-level chaos: the proxy, and retries never duplicating output
# ---------------------------------------------------------------------------

@needs_unix
@pytest.mark.slow
class TestChaosProxy:
    @pytest.fixture()
    def stack(self, tmp_path):
        from repro.server import ChaosProxy
        from repro.pipeline.faults import FaultPlan
        handle = _start_server(tmp_path)
        proxy = ChaosProxy(str(tmp_path / "chaos.sock"),
                           handle.socket_path, FaultPlan()).start()
        yield handle, proxy
        proxy.close()
        handle.stop()

    def test_no_faults_relays_transparently(self, stack):
        handle, proxy = stack
        expected = check_source(OK_SOURCE, "c.vlt").render()
        outcome = check_via_daemon(OK_SOURCE, "c.vlt",
                                   socket_path=proxy.listen_path)
        assert outcome is not None and outcome.via_daemon is True
        assert outcome.render == expected
        assert proxy.faults_acted == {}

    @pytest.mark.parametrize("kind", ["torn", "garbage-frame",
                                      "oversize", "disconnect"])
    def test_faulted_first_attempt_retries_byte_identical(
            self, stack, kind):
        from repro.pipeline.faults import FaultPlan
        handle, proxy = stack
        proxy.plan = FaultPlan.parse(f"{kind}@0")
        proxy.reset()
        expected = check_source(OK_SOURCE, "c.vlt").render()
        outcome = check_via_daemon(OK_SOURCE, "c.vlt",
                                   socket_path=proxy.listen_path,
                                   _sleep=lambda s: None)
        assert outcome is not None, f"{kind}: retry should have succeeded"
        assert outcome.via_daemon is True
        assert outcome.render == expected
        assert proxy.faults_acted[kind] == 1
        assert proxy.requests_seen == 2      # the fault, then the retry

    def test_stall_times_out_then_retry_succeeds(self, stack):
        from repro.pipeline.faults import FaultPlan
        handle, proxy = stack
        proxy.plan = FaultPlan.parse("stall@0")
        proxy.reset()
        expected = check_source(OK_SOURCE, "c.vlt").render()
        outcome = check_via_daemon(OK_SOURCE, "c.vlt",
                                   socket_path=proxy.listen_path,
                                   read_timeout=0.3,
                                   _sleep=lambda s: None)
        assert outcome is not None and outcome.render == expected
        assert proxy.faults_acted["stall"] == 1


@needs_unix
@pytest.mark.slow
class TestRetryNeverDuplicates:
    """Property: whatever single wire fault hits the first attempt,
    the client's bounded retry yields exactly the in-process
    diagnostics — byte-identical, never duplicated or interleaved."""

    SOURCES = [OK_SOURCE, BAD_SOURCE]

    @pytest.fixture(scope="class")
    def stack(self, tmp_path_factory):
        from repro.server import ChaosProxy
        from repro.pipeline.faults import FaultPlan
        tmp_path = tmp_path_factory.mktemp("chaosprop")
        handle = _start_server(tmp_path)
        proxy = ChaosProxy(str(tmp_path / "chaos.sock"),
                           handle.socket_path, FaultPlan()).start()
        expected = {i: check_source(src, f"prop{i}.vlt").render()
                    for i, src in enumerate(self.SOURCES)}
        yield proxy, expected
        proxy.close()
        handle.stop()

    def test_retries_never_duplicate_diagnostics(self, stack):
        from hypothesis import HealthCheck, given, settings
        from hypothesis import strategies as st
        from repro.pipeline.faults import FaultPlan
        proxy, expected = stack

        @settings(max_examples=12, deadline=None,
                  suppress_health_check=[HealthCheck.function_scoped_fixture])
        @given(source_idx=st.integers(0, len(self.SOURCES) - 1),
               kind=st.sampled_from(["torn", "garbage-frame", "oversize",
                                     "disconnect", None]))
        def prop(source_idx, kind):
            proxy.plan = FaultPlan.parse(f"{kind}@0") if kind \
                else FaultPlan()
            proxy.reset()
            outcome = check_via_daemon(
                self.SOURCES[source_idx], f"prop{source_idx}.vlt",
                socket_path=proxy.listen_path, _sleep=lambda s: None)
            assert outcome is not None
            assert outcome.render == expected[source_idx]

        prop()


# ---------------------------------------------------------------------------
# Injected ENOSPC in the shared CAS
# ---------------------------------------------------------------------------

class TestEnospcInjection:
    def test_cas_degrades_to_miss_under_enospc(self, tmp_path):
        from repro.cache import CASTier, encode_blob
        from repro.pipeline.faults import FaultPlan
        plan = FaultPlan.parse("enospc@1")
        tier = CASTier(str(tmp_path / "cas"), fsync=False,
                       fault_plan=plan)
        key1 = "1" * 64 + "-s"
        key2 = "2" * 64 + "-s"
        tier.put_many({key1: encode_blob("one")})
        assert tier.get_many([key1]) == {}   # the write failed as ENOSPC
        assert tier.io_errors == 1
        tier.put_many({key2: encode_blob("two")})   # budget consumed
        assert key2 in tier.get_many([key2])
        assert tier.io_errors == 1

    def test_store_counts_enospc_as_tier_error_not_corruption(
            self, tmp_path):
        from repro.cache import CASTier, SharedStore, encode_blob
        from repro.pipeline.faults import FaultPlan
        plan = FaultPlan.parse("enospc@1")
        store = SharedStore([CASTier(str(tmp_path / "cas"), fsync=False,
                                     fault_plan=plan)])
        key = "a" * 64 + "-s"
        blob = encode_blob({"v": 1})
        store.put_blobs({key: blob})
        assert store.get_blobs([key]) == {}  # degraded to a miss
        store.put_blobs({key: blob})
        assert store.get_blobs([key]) == {key: blob}
        rows = store.stats_snapshot()["tiers"]
        assert rows[0]["io_errors"] == 1
