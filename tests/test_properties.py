"""Property-based tests (hypothesis) on core invariants."""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import check_source, load_context, parse
from repro.analysis import synthesize_program
from repro.core import HeldKeys, StateSet, fresh_key
from repro.diagnostics import LexError, ParseError, VaultError
from repro.lower import compile_to_python, erase_program, load_compiled
from repro.stdlib.hostimpl import create_host, make_interpreter
from repro.syntax import parse_program, pretty, tokenize

SLOW = settings(max_examples=25,
                suppress_health_check=[HealthCheck.too_slow],
                deadline=None)


# ---------------------------------------------------------------------------
# Lexer totality: printable input either tokenizes or raises LexError.
# ---------------------------------------------------------------------------

@given(st.text(alphabet=string.printable, max_size=200))
@SLOW
def test_lexer_never_crashes(source):
    try:
        tokens = tokenize(source)
    except LexError:
        return
    assert tokens[-1].kind.name == "EOF"


@given(st.text(alphabet=string.printable, max_size=120))
@SLOW
def test_parser_never_crashes(source):
    try:
        parse_program(source)
    except (LexError, ParseError):
        pass


# ---------------------------------------------------------------------------
# Held-key set laws.
# ---------------------------------------------------------------------------

@given(st.lists(st.sampled_from(["add", "remove", "set"]), max_size=30),
       st.integers(0, 5))
@SLOW
def test_heldkeys_linearity(ops, n_keys):
    from repro.core import CapabilityError
    keys = [fresh_key(f"K{i}") for i in range(max(n_keys, 1))]
    held = HeldKeys()
    model = {}
    for i, op in enumerate(ops):
        key = keys[i % len(keys)]
        if op == "add":
            if key in model:
                try:
                    held.add(key, "s")
                    assert False, "duplicate add must raise"
                except CapabilityError:
                    pass
            else:
                held.add(key, "s")
                model[key] = "s"
        elif op == "remove":
            if key in model:
                held.remove(key)
                del model[key]
            else:
                try:
                    held.remove(key)
                    assert False, "missing remove must raise"
                except CapabilityError:
                    pass
        else:
            if key in model:
                held.set_state(key, f"s{i}")
                model[key] = f"s{i}"
    assert set(held) == set(model)
    for key, state in model.items():
        assert held.state_of(key) == state


@given(st.integers(2, 8))
@SLOW
def test_stateset_chain_is_total_order(length):
    states = tuple(f"s{i}" for i in range(length))
    edges = tuple((states[i], states[i + 1]) for i in range(length - 1))
    sset = StateSet("chain", states, edges)
    for i in range(length):
        for j in range(length):
            assert sset.leq(states[i], states[j]) == (i <= j)
    assert sset.bottom() == states[0]


# ---------------------------------------------------------------------------
# Synthetic programs: the checker accepts all clean ones, rejects all
# fully-buggy ones, and never crashes on either.
# ---------------------------------------------------------------------------

@given(st.integers(1, 6), st.integers(0, 1000))
@SLOW
def test_clean_synthetic_programs_check(n, seed):
    source = synthesize_program(n, seed=seed)
    report = check_source(source, units=["region"])
    assert report.ok, report.render()


@given(st.integers(1, 5), st.integers(0, 1000))
@SLOW
def test_buggy_synthetic_programs_rejected(n, seed):
    source = synthesize_program(n, seed=seed, error_rate=1.0)
    report = check_source(source, units=["region"])
    assert not report.ok


@given(st.integers(1, 5), st.integers(0, 500))
@SLOW
def test_synthetic_parse_pretty_fixpoint(n, seed):
    source = synthesize_program(n, seed=seed)
    text = pretty(parse_program(source))
    assert pretty(parse_program(text)) == text


@given(st.integers(1, 4), st.integers(0, 500))
@SLOW
def test_erasure_is_idempotent(n, seed):
    source = synthesize_program(n, seed=seed)
    once = erase_program(parse_program(source))
    twice = erase_program(parse_program(pretty(once)))
    assert pretty(twice) == pretty(once)


@given(st.integers(1, 3), st.integers(0, 300))
@SLOW
def test_interpreter_and_compiler_agree(n, seed):
    source = synthesize_program(n, seed=seed)
    ctx, reporter = load_context(source)
    assert reporter.ok
    interp = make_interpreter(ctx, create_host())
    module = load_compiled(compile_to_python(parse(source)), create_host())
    for i in range(n):
        name = f"worker_{i}"
        assert interp.call(name, [seed % 17]) == module[name](seed % 17)


# ---------------------------------------------------------------------------
# Arithmetic expression semantics: interpreter matches Python.
# ---------------------------------------------------------------------------

# ---------------------------------------------------------------------------
# Robustness: the checker never crashes on any mutant of any corpus
# program, and detection implies a protocol-relevant diagnostic.
# ---------------------------------------------------------------------------

from repro.analysis import CORPUS
from repro.analysis.mutation import generate_mutants

_ALL_MUTANTS = [
    mutant
    for program in CORPUS.values()
    for mutant in generate_mutants(program.source)
]


@given(st.integers(0, max(len(_ALL_MUTANTS) - 1, 0)))
@SLOW
def test_checker_total_on_mutants(index):
    mutant = _ALL_MUTANTS[index]
    report = check_source(mutant.source)   # must not raise
    for diag in report.errors:
        assert diag.code.value.startswith("V0")


@given(st.integers(0, max(len(_ALL_MUTANTS) - 1, 0)))
@SLOW
def test_erasure_total_on_mutants(index):
    from repro.analysis.plaincheck import plain_check
    mutant = _ALL_MUTANTS[index]
    plain_check(mutant.source)   # must not raise


_expr = st.deferred(lambda: st.one_of(
    st.integers(0, 50).map(str),
    st.tuples(_expr, st.sampled_from(["+", "-", "*"]), _expr)
    .map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
))


@given(_expr)
@SLOW
def test_arithmetic_matches_python(expr_text):
    source = f"int main() {{ return {expr_text}; }}"
    ctx, reporter = load_context(source, stdlib=False)
    assert reporter.ok
    interp = make_interpreter(ctx, create_host())
    assert interp.call("main") == eval(expr_text)


# ---------------------------------------------------------------------------
# Daemon transparency: for any synthetic program, checking through a
# live daemon produces exactly the in-process result, and a daemon
# that dies without answering falls back cleanly (no orphan sockets,
# no fd leaks).
# ---------------------------------------------------------------------------

import os
import socket as socket_mod
import threading

import pytest

from repro.server import CheckServer, check_detailed

from test_resilience import _open_fds

_daemon_lock = threading.Lock()
_daemon_state = {}


@pytest.fixture(scope="module")
def property_daemon(tmp_path_factory):
    """One warm daemon for the whole module (hypothesis re-enters the
    test many times; a per-example daemon would dominate runtime)."""
    if not hasattr(socket_mod, "AF_UNIX"):
        pytest.skip("needs AF_UNIX sockets")
    sock = str(tmp_path_factory.mktemp("prop-daemon") / "d.sock")
    server = CheckServer(socket_path=sock)
    server.bind()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield sock
    finally:
        server.request_stop()
        thread.join(10)
        server.close()


@given(st.integers(1, 5), st.integers(0, 500),
       st.sampled_from([0.0, 1.0]))
@SLOW
def test_daemon_check_identical_to_in_process(property_daemon, n, seed,
                                              error_rate):
    source = synthesize_program(n, seed=seed, error_rate=error_rate)
    local = check_source(source, filename="prop.vlt", units=["region"])
    outcome = check_detailed(source, "prop.vlt", {"units": ["region"]},
                             socket_path=property_daemon)
    assert outcome.via_daemon is True, "daemon should have answered"
    assert outcome.ok == local.ok
    assert outcome.render == local.render()
    assert outcome.errors == len(local.errors)


class _NeverRepliesServer:
    """Accepts, reads the request, then hangs up without a reply —
    the observable shape of a daemon killed mid-request."""

    def __init__(self):
        self.listener = None
        self.path = None
        self._thread = None
        self._stop = False

    def __enter__(self):
        import tempfile
        directory = tempfile.mkdtemp(prefix="vaultc-dead-daemon-")
        self.path = os.path.join(directory, "d.sock")
        self.listener = socket_mod.socket(socket_mod.AF_UNIX,
                                          socket_mod.SOCK_STREAM)
        self.listener.bind(self.path)
        self.listener.listen(8)
        self.listener.settimeout(0.2)
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def _run(self):
        while not self._stop:
            try:
                conn, _ = self.listener.accept()
            except socket_mod.timeout:
                continue
            except OSError:
                return
            try:
                conn.settimeout(5.0)
                conn.recv(1 << 16)           # let the client commit
            except OSError:
                pass
            conn.close()                     # ...then die on them

    def __exit__(self, *exc_info):
        self._stop = True
        self._thread.join(5)
        self.listener.close()
        try:
            os.unlink(self.path)
            os.rmdir(os.path.dirname(self.path))
        except OSError:
            pass


@pytest.mark.slow
@pytest.mark.daemon
@given(st.integers(1, 3), st.integers(0, 200))
@settings(max_examples=10,
          suppress_health_check=[HealthCheck.too_slow],
          deadline=None)
def test_dead_daemon_falls_back_without_leaking(n, seed):
    if not hasattr(socket_mod, "AF_UNIX"):
        pytest.skip("needs AF_UNIX sockets")
    source = synthesize_program(n, seed=seed)
    local = check_source(source, filename="dead.vlt", units=["region"])
    fds_before = _open_fds()
    with _NeverRepliesServer() as dead:
        outcome = check_detailed(source, "dead.vlt", {"units": ["region"]},
                                 socket_path=dead.path)
    assert outcome.via_daemon is False, "must have fallen back in-process"
    assert outcome.ok == local.ok
    assert outcome.render == local.render()
    if fds_before is not None:
        assert _open_fds() == fds_before, "fallback leaked fds"


# ---------------------------------------------------------------------------
# Adversarial generator determinism (repro.testing.generate).
# ---------------------------------------------------------------------------

@given(st.integers(0, 2**31 - 1))
@SLOW
def test_generator_is_deterministic_and_always_parses(seed):
    from repro.testing import generate_program
    program = generate_program(seed)
    again = generate_program(seed)
    assert program.source == again.source, \
        "same seed must reproduce byte-identical program text"
    assert program.intents == again.intents
    # Every generated program is a valid unit: it parses, resolves and
    # type-checks — only *protocol* (V03xx) diagnostics are allowed.
    report = check_source(program.source, filename=f"gen-{seed}.vlt")
    offending = [c.value for c in report.codes()
                 if not c.value.startswith("V03")]
    assert not offending, (
        f"seed {seed} produced non-protocol diagnostics {offending}:\n"
        f"{report.render()}")


@given(st.integers(0, 2**31 - 1), st.integers(0, 10_000))
@SLOW
def test_derived_seeds_replay_exactly(seed, index):
    from repro.testing import derive_seed, generate_program
    program_seed = derive_seed(seed, index)
    assert derive_seed(seed, index) == program_seed
    assert (generate_program(program_seed).source
            == generate_program(program_seed).source)
