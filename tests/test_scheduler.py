"""Tests for the cost-model scheduler and the fork-server worker pool.

Covers the three behaviours the parallel layer promises:

* the LPT planner packs skewed per-function costs into balanced
  batches and falls back to serial below the break-even point, so
  ``jobs > 1`` never pessimises small workloads;
* summaries (and recorded costs) persist across *processes*: a cache
  written by one interpreter is replayed by another with zero
  functions re-checked;
* a crashing worker is surfaced (stderr warning + child traceback),
  and the serial fallback still produces byte-identical diagnostics.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys

import pytest

from repro import check_source
from repro.analysis import synthesize_program
from repro.pipeline import (BREAK_EVEN_SECONDS, CheckSession, estimate_cost,
                            fork_available, plan, resolve_jobs)
from repro.syntax import ast, parse_program

UNITS = ["region"]


def _fundef(source: str) -> ast.FunDef:
    decls = parse_program(source).decls
    fundefs = [d for d in decls if isinstance(d, ast.FunDef)]
    assert len(fundefs) == 1
    return fundefs[0]


# ---------------------------------------------------------------------------
# The static cost estimator
# ---------------------------------------------------------------------------

class TestEstimator:
    def test_loops_and_branches_cost_more(self):
        straight = _fundef("int f(int x) { int y = x + 1; return y; }")
        loopy = _fundef("""\
int g(int x) {
    while (x > 0) {
        if (x > 10) { x = x - 2; } else { x = x - 1; }
    }
    return x;
}
""")
        assert estimate_cost(loopy) > 3 * estimate_cost(straight)

    def test_estimate_is_memoised_on_the_node(self):
        fundef = _fundef("int f() { return 1; }")
        assert estimate_cost(fundef) == estimate_cost(fundef)
        assert "_pl_cost" in fundef.__dict__


# ---------------------------------------------------------------------------
# LPT planning and the break-even fallback
# ---------------------------------------------------------------------------

class TestPlan:
    def test_skewed_costs_pack_into_balanced_batches(self):
        rng = random.Random(0)
        quals = [f"fn_{i}" for i in range(200)]
        costs = {q: rng.expovariate(10.0) for q in quals}
        items = [(q, None) for q in quals]
        sched = plan(items, jobs=4, recorded_costs=costs,
                     break_even_seconds=0.0)
        assert sched.parallel
        assert len(sched.batches) == 4
        # Every item lands in exactly one batch.
        flat = sorted(i for batch in sched.batches for i in batch)
        assert flat == list(range(200))
        # Batches come within 20% of each other despite the skew.
        loads = [sum(costs[quals[i]] for i in batch)
                 for batch in sched.batches]
        assert max(loads) <= min(loads) * 1.2
        assert sched.batch_costs == pytest.approx(loads)

    def test_below_break_even_stays_serial(self):
        items = [(f"fn_{i}", None) for i in range(10)]
        costs = {q: 0.001 for q, _ in items}  # 10ms total < 50ms
        sched = plan(items, jobs=4, recorded_costs=costs)
        assert not sched.parallel
        assert "break-even" in sched.reason
        assert sched.total_cost == pytest.approx(0.01)

    def test_single_worker_or_single_item_is_serial(self):
        items = [(f"fn_{i}", None) for i in range(10)]
        costs = {q: 1.0 for q, _ in items}
        assert not plan(items, jobs=1, recorded_costs=costs).parallel
        assert not plan(items[:1], jobs=4, recorded_costs=costs).parallel

    def test_recorded_costs_override_the_estimate(self):
        small = _fundef("int f() { return 1; }")
        items = [("a", small), ("b", small)]
        # The estimate alone is far below break-even...
        assert not plan(items, jobs=2).parallel
        # ...but a recorded history of slow checks flips the verdict.
        sched = plan(items, jobs=2, recorded_costs={"a": 1.0, "b": 1.0})
        assert sched.parallel

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs("5") == 5
        for spec in ("auto", "", 0, -1, None):
            assert resolve_jobs(spec) >= 1
        assert BREAK_EVEN_SECONDS > 0


# ---------------------------------------------------------------------------
# Cross-process summary persistence
# ---------------------------------------------------------------------------

_WRITER = """\
import sys
from repro.pipeline import CheckSession
from repro.analysis import synthesize_program

source = synthesize_program(20, seed=9, error_rate=0.2)
session = CheckSession(units=["region"], cache_dir=sys.argv[1])
session.check(source)
assert session.stats.functions_checked > 0
print(session.stats.functions_checked)
"""


class TestCrossProcessPersistence:
    def test_cache_written_by_subprocess_replays_in_parent(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        env = dict(os.environ)
        src_root = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src_root) \
            + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _WRITER, cache_dir],
            capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stderr
        checked_in_child = int(proc.stdout.strip())

        source = synthesize_program(20, seed=9, error_rate=0.2)
        session = CheckSession(units=UNITS, cache_dir=cache_dir)
        report = session.check(source)
        # Zero functions re-checked: every summary replayed from the
        # cache the other interpreter wrote.
        assert session.stats.functions_checked == 0
        assert session.stats.last_checked == []
        assert session.stats.functions_replayed == checked_in_child
        assert report.render() == check_source(source, units=UNITS).render()
        # Recorded costs travelled with the summaries (cache v2).
        assert len(session._cost_by_qual) == checked_in_child

    def test_version1_cache_payload_still_loads(self, tmp_path):
        import pickle
        source = synthesize_program(5, seed=2)
        writer = CheckSession(units=UNITS, cache_dir=str(tmp_path))
        writer.check(source)
        path = os.path.join(str(tmp_path), "summaries.pkl")
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        inner = pickle.loads(payload["data"])
        with open(path, "wb") as handle:
            pickle.dump({"version": 1, "summaries": inner["summaries"]},
                        handle)
        reader = CheckSession(units=UNITS, cache_dir=str(tmp_path))
        reader.check(source)
        assert reader.stats.functions_checked == 0


# ---------------------------------------------------------------------------
# Worker crashes are surfaced, not swallowed
# ---------------------------------------------------------------------------

@pytest.mark.skipif(not fork_available(), reason="needs os.fork")
class TestWorkerCrash:
    def test_crash_warns_and_falls_back_to_serial(self, monkeypatch, capfd):
        import repro.pipeline.workers as workers

        def boom(ctx, qual, fundef, **kwargs):
            raise RuntimeError("injected worker failure")

        # Patch before the pool forks: children inherit the broken
        # checker, the parent's serial fallback does not use it.
        monkeypatch.setattr(workers, "check_function_diagnostics", boom)
        source = synthesize_program(12, seed=3, error_rate=0.3)
        expected = check_source(source, units=UNITS).render()
        with CheckSession(units=UNITS, jobs=2,
                          break_even_seconds=0.0) as session:
            rendered = session.check(source).render()
        assert rendered == expected
        assert session.stats.serial_fallbacks == 1
        err = capfd.readouterr().err
        assert "falling back to serial" in err
        assert "injected worker failure" in err  # the child's traceback

    def test_crash_emits_structured_event(self, monkeypatch, capfd):
        import repro.pipeline.workers as workers

        def boom(ctx, qual, fundef, **kwargs):
            raise RuntimeError("injected worker failure")

        monkeypatch.setattr(workers, "check_function_diagnostics", boom)
        source = synthesize_program(12, seed=3, error_rate=0.3)
        with CheckSession(units=UNITS, jobs=2,
                          break_even_seconds=0.0) as session:
            session.check(source)
        crashes = session.telemetry.events.by_kind("worker_crash")
        assert crashes
        event = crashes[0]
        assert event.fields["pid"] > 0  # the child's pid
        assert event.fields["functions"]  # the batch it was checking
        assert all(isinstance(q, str) for q in event.fields["functions"])
        assert "injected worker failure" in event.fields["traceback"]
        assert len(session.telemetry.events.by_kind("serial_fallback")) == 1
        capfd.readouterr()  # the stderr warning still fires; discard
