"""Pretty-printer tests: output re-parses and is a fixpoint."""

import pytest

from repro.drivers import driver_source
from repro.stdlib import STDLIB_UNITS, stdlib_source
from repro.syntax import parse_expr, parse_program, parse_type, pretty

ROUNDTRIP_SOURCES = [
    "struct point { int x; int y; }",
    "variant opt_key<key K> [ 'NoKey | 'SomeKey {K} ];",
    "variant status<key K> [ 'Ok {K@named} | 'Error(int) {K@raw} ];",
    "stateset L = [ a < b < c ];",
    "key IRQL @ L;",
    "type paged<type T> = (IRQL @ (level <= APC_LEVEL)) : T;",
    "type guarded_int<key K> = K:int;",
    "interface REGION { type region; tracked(R) region create() [new R]; "
    "void delete(tracked(R) region r) [-R]; }",
    "extern module Region : REGION;",
    "void fclose(tracked(F) FILE f) [-F];",
    "tracked(N) sock accept(tracked(S) sock s, sockaddr a) "
    "[S@listening, new N@ready];",
    "KIRQL<S> acquire(KSPIN_LOCK<K> l) "
    "[+K, IRQL @ (S <= DISPATCH_LEVEL) -> DISPATCH_LEVEL];",
    """
void foo(tracked(F) FILE f, bool early) [-F] {
    tracked opt_key<F> flag;
    if (early) {
        fclose(f);
        flag = 'NoKey;
    } else {
        flag = 'SomeKey{F};
    }
    switch (flag) {
        case 'NoKey:
            int x = 0;
        case 'SomeKey:
            fclose(f);
    }
}
""",
    """
int loops(int n) {
    int i = 0;
    int acc = 0;
    while (i < n) {
        if (acc > 100) {
            break;
        }
        acc += i * 2;
        i++;
    }
    return acc;
}
""",
]


@pytest.mark.parametrize("source", ROUNDTRIP_SOURCES)
def test_pretty_reparses(source):
    program = parse_program(source)
    text = pretty(program)
    reparsed = parse_program(text)
    assert pretty(reparsed) == text


@pytest.mark.parametrize("unit", list(STDLIB_UNITS))
def test_stdlib_pretty_fixpoint(unit):
    text = pretty(parse_program(stdlib_source(unit)))
    assert pretty(parse_program(text)) == text


def test_driver_pretty_fixpoint():
    text = pretty(parse_program(driver_source()))
    assert pretty(parse_program(text)) == text


@pytest.mark.parametrize("type_text", [
    "int", "byte[]", "tracked(R) region", "tracked region",
    "tracked(@raw) sock", "K:FILE", "K@open:FILE",
    "(IRQL @ (level <= APC_LEVEL)) : config", "opt_key<K>", "KIRQL<S>",
])
def test_type_roundtrip(type_text):
    printed = pretty(parse_type(type_text))
    assert pretty(parse_type(printed)) == printed


@pytest.mark.parametrize("expr_text", [
    "1 + 2 * 3", "'SomeKey{F}", "'Cons(rgn, 'Nil)",
    "new tracked point {x=3; y=4;}", "new(rgn) point {x=1; y=2;}",
    "buf[i + 1]", "Region.create()", "!(a && b)", "[1, 2, 3]",
])
def test_expr_roundtrip(expr_text):
    printed = pretty(parse_expr(expr_text))
    assert pretty(parse_expr(printed)) == printed
