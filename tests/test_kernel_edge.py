"""Kernel-simulator edge cases and multi-request scenarios."""

import pytest

from repro.diagnostics import Code, RuntimeProtocolError
from repro.drivers import FloppyHarness
from repro.kernel import (IRP_MJ_READ, IRP_MJ_WRITE, FloppyDevice, Irp,
                          KernelSim, OWNER_DRIVER,
                          STATUS_INVALID_DEVICE_REQUEST, STATUS_SUCCESS)


class TestKernelRouting:
    def test_unknown_device_rejected(self):
        kernel = KernelSim()
        with pytest.raises(RuntimeProtocolError):
            kernel.top_device("nothing")

    def test_missing_dispatch_completes_invalid(self):
        # An FDO without a handler for the major completes the request
        # with STATUS_INVALID_DEVICE_REQUEST instead of dropping it.
        kernel = KernelSim()
        fdo = kernel.create_fdo("bare", extension=None)
        irp = kernel.submit_request(None, "bare", IRP_MJ_READ)
        assert irp.completed
        assert irp.status == STATUS_INVALID_DEVICE_REQUEST

    def test_submit_records_log(self):
        kernel = KernelSim()
        kernel.create_fdo("bare", extension=None)
        kernel.submit_request(None, "bare", IRP_MJ_READ)
        assert any("submit READ" in line for line in kernel.log)

    def test_audit_flags_dropped_irps(self):
        kernel = KernelSim()
        irp = Irp(IRP_MJ_WRITE)
        irp.give_to(OWNER_DRIVER)
        kernel.live_irps[irp.id] = irp
        assert kernel.audit()
        with pytest.raises(RuntimeProtocolError) as exc:
            kernel.assert_no_leaks()
        assert exc.value.code is Code.RT_LEAK

    def test_run_until_complete_detects_starvation(self):
        kernel = KernelSim()
        irp = Irp(IRP_MJ_READ)
        with pytest.raises(RuntimeProtocolError) as exc:
            kernel.run_until_complete(None, irp, max_ticks=10)
        assert exc.value.code is Code.RT_DEADLOCK


class TestConcurrentRequests:
    def test_interleaved_reads_and_writes(self):
        h = FloppyHarness()
        h.boot()
        # Submit several transfers; each is fully processed through the
        # asynchronous PDO path.
        blobs = {i: bytes([i]) * 128 for i in range(1, 6)}
        for i, blob in blobs.items():
            irp = h.write(i * 512, blob)
            assert irp.status == STATUS_SUCCESS
        for i, blob in blobs.items():
            irp, data = h.read(i * 512, len(blob))
            assert data == blob
        assert h.audit() == []

    def test_many_requests_accumulate_stats(self):
        h = FloppyHarness()
        h.boot()
        for i in range(10):
            h.write(i * 512, b"x")
        assert h.device.writes == 10
        assert h.stats_total() == 10

    def test_large_transfer_spans_sectors(self):
        h = FloppyHarness()
        h.boot()
        payload = bytes(range(256)) * 8      # 2 KiB = 4 sectors
        irp = h.write(0, payload)
        assert irp.information == len(payload)
        _r, data = h.read(0, len(payload))
        assert data == payload

    def test_latency_proportional_to_transfer(self):
        h = FloppyHarness()
        h.boot()
        t0 = h.host.kernel.ticks
        h.write(0, b"z" * 512)
        small = h.host.kernel.ticks - t0
        t1 = h.host.kernel.ticks
        h.write(0, b"z" * (512 * 8))
        large = h.host.kernel.ticks - t1
        assert large > small


class TestHarnessIsolation:
    def test_two_harnesses_do_not_share_state(self):
        a = FloppyHarness()
        a.boot()
        b = FloppyHarness()
        b.boot()
        a.write(0, b"only-a")
        _irp, data = b.read(0, 6)
        assert data != b"only-a"

    def test_fresh_harness_has_no_leaks(self):
        h = FloppyHarness()
        h.boot()
        assert h.audit() == []
