"""Checker tests for the Windows 2000 kernel interface (paper §4):
IRP ownership, completion routines, events, spin locks, IRQLs,
paged memory."""

from repro.diagnostics import Code

from conftest import assert_ok, assert_rejected, codes

DISPATCH_EFFECT = "[D, -I, IRQL @ (lvl <= DISPATCH_LEVEL)]"


class TestIrpOwnership:
    def test_complete_consumes(self):
        assert_ok("""
DSTATUS<I> Svc(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I] {
    return IoCompleteRequest(irp, STATUS_SUCCESS());
}
""")

    def test_pass_down_consumes(self):
        assert_ok("""
DSTATUS<I> Svc(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I] {
    IoCopyCurrentIrpStackLocationToNext(irp);
    return IoCallDriver(dev, irp);
}
""")

    def test_pend_does_not_consume_so_must_queue(self):
        # IoMarkIrpPending keeps the key; just returning its status
        # leaves the IRP key held — the paper's "neither completed,
        # passed on, nor pended" family of bugs.
        assert_rejected("""
DSTATUS<I> Svc(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I] {
    return IoMarkIrpPending(irp);
}
""", Code.POSTCONDITION_MISMATCH)

    def test_pend_then_anonymize_into_queue(self):
        # Pending legitimately: record the IRP (with its key) in a
        # keyed container, anonymizing it (paper §4.1: "a driver
        # consumes the key by storing the IRP on a pending list").
        assert_ok("""
variant irpbox [ 'Empty | 'Boxed(tracked IRP) ];
void enqueue(tracked irpbox b);
DSTATUS<I> Svc(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I] {
    DSTATUS<I> st = IoMarkIrpPending(irp);
    tracked irpbox filled = 'Boxed(irp);
    enqueue(filled);
    return st;
}
""")

    def test_touch_after_complete(self):
        result = codes("""
DSTATUS<I> Svc(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I] {
    DSTATUS<I> st = IoCompleteRequest(irp, STATUS_SUCCESS());
    IrpSetInformation(irp, 1);
    return st;
}
""")
        assert Code.KEY_NOT_HELD in result or \
            Code.KEY_CONSUMED_MISSING in result

    def test_touch_after_call_driver(self):
        result = codes("""
DSTATUS<I> Svc(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I] {
    IoCopyCurrentIrpStackLocationToNext(irp);
    DSTATUS<I2> st = IoCallDriver(dev, irp);
    int n = IrpTransferLength(irp);
    return st;
}
""")
        assert Code.KEY_NOT_HELD in result or \
            Code.KEY_CONSUMED_MISSING in result

    def test_complete_twice(self):
        assert_rejected("""
DSTATUS<I> Svc(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I] {
    DSTATUS<I> st = IoCompleteRequest(irp, STATUS_SUCCESS());
    return IoCompleteRequest(irp, STATUS_SUCCESS());
}
""", Code.KEY_CONSUMED_MISSING)

    def test_dstatus_must_match_this_irp(self):
        # Completing a *different* IRP does not produce a DSTATUS for
        # the request being served.
        assert_rejected("""
DSTATUS<I> Svc(DEVICE_OBJECT dev, tracked(I) IRP irp,
               tracked(J) IRP other) [-I, -J] {
    DSTATUS<I> st = IoCompleteRequest(irp, STATUS_SUCCESS());
    return IoCompleteRequest(other, STATUS_SUCCESS());
}
""", Code.TYPE_MISMATCH)

    def test_allocate_and_free_irp(self):
        assert_ok("""
void f() {
    tracked(M) IRP mirp = IoAllocateIrp(1);
    IrpSetInformation(mirp, 0);
    IoFreeIrp(mirp);
}
""")

    def test_allocated_irp_leak(self):
        assert_rejected("""
void f() {
    tracked(M) IRP mirp = IoAllocateIrp(1);
}
""", Code.KEY_LEAKED)


class TestDeviceQueues:
    """§4.1's pending list through KDEVICE_QUEUE."""

    def test_pend_and_queue(self):
        assert_ok("""
DSTATUS<I> Svc(DEVICE_OBJECT dev, tracked(I) IRP irp, KDEVICE_QUEUE q)
        [-I] {
    DSTATUS<I> pended = IoMarkIrpPending(irp);
    KeInsertDeviceQueue(q, irp);
    return pended;
}
""")

    def test_queue_without_pend_still_consumes(self):
        # Inserting alone consumes the key; the function then cannot
        # produce a DSTATUS for the request at all.
        assert_rejected("""
DSTATUS<I> Svc(DEVICE_OBJECT dev, tracked(I) IRP irp, KDEVICE_QUEUE q)
        [-I] {
    KeInsertDeviceQueue(q, irp);
    return IoCompleteRequest(irp, STATUS_SUCCESS());
}
""", Code.KEY_CONSUMED_MISSING)

    def test_dequeue_forces_empty_case(self):
        assert_rejected("""
void drain_one(KDEVICE_QUEUE q, DEVICE_OBJECT dev) {
    switch (KeRemoveDeviceQueue(q)) {
        case 'Dequeued(irp):
            IoCopyCurrentIrpStackLocationToNext(irp);
            DSTATUS<P> st = IoCallDriver(dev, irp);
    }
}
""", Code.NONEXHAUSTIVE_SWITCH)

    def test_dequeued_irp_must_be_disposed(self):
        assert_rejected("""
void drain_one(KDEVICE_QUEUE q) {
    switch (KeRemoveDeviceQueue(q)) {
        case 'QueueEmpty:
            int none = 0;
        case 'Dequeued(irp):
            int len = IrpTransferLength(irp);
    }
}
""", Code.JOIN_MISMATCH)

    def test_drain_loop_invariant_inferred(self):
        assert_ok("""
void drain(KDEVICE_QUEUE q, DEVICE_OBJECT dev) {
    while (KeQueueDepth(q) > 0) {
        switch (KeRemoveDeviceQueue(q)) {
            case 'QueueEmpty:
                int none = 0;
            case 'Dequeued(irp):
                IoCopyCurrentIrpStackLocationToNext(irp);
                DSTATUS<P> st = IoCallDriver(dev, irp);
        }
    }
}
""")


class TestCompletionRoutines:
    def test_figure7_accepted(self):
        assert_ok("""
DSTATUS<I> PnpRequest(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I] {
    KEVENT<I> irp_is_back = KeInitializeEvent(irp);
    tracked COMPLETION_RESULT<I> RegainIrp(DEVICE_OBJECT d,
                                           tracked(I) IRP i) [-I] {
        KeSignalEvent(irp_is_back);
        return 'MoreProcessingRequired;
    }
    IoSetCompletionRoutine(irp, RegainIrp);
    IoCopyCurrentIrpStackLocationToNext(irp);
    DSTATUS<I2> st = IoCallDriver(IoGetLowerDevice(dev), irp);
    KeWaitForEvent(irp_is_back);
    return IoCompleteRequest(irp, STATUS_SUCCESS());
}
""")

    def test_footnote10_finished_after_signal_impossible(self):
        # Once the key has been signalled away, 'Finished (which
        # captures the key) cannot be constructed.
        assert_rejected("""
DSTATUS<I> Pnp(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I] {
    KEVENT<I> ev = KeInitializeEvent(irp);
    tracked COMPLETION_RESULT<I> Bad(DEVICE_OBJECT d,
                                     tracked(I) IRP i) [-I] {
        KeSignalEvent(ev);
        return 'Finished(0);
    }
    IoSetCompletionRoutine(irp, Bad);
    IoCopyCurrentIrpStackLocationToNext(irp);
    DSTATUS<I2> st = IoCallDriver(IoGetLowerDevice(dev), irp);
    KeWaitForEvent(ev);
    return IoCompleteRequest(irp, STATUS_SUCCESS());
}
""", Code.KEY_NOT_HELD)

    def test_completion_routine_finishing_is_ok(self):
        # A routine that does NOT signal may return 'Finished — the
        # key travels inside the result.
        assert_ok("""
DSTATUS<I> Pnp(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I] {
    tracked COMPLETION_RESULT<I> Done(DEVICE_OBJECT d,
                                      tracked(I) IRP i) [-I] {
        return 'Finished(0);
    }
    IoSetCompletionRoutine(irp, Done);
    IoCopyCurrentIrpStackLocationToNext(irp);
    return IoCallDriver(IoGetLowerDevice(dev), irp);
}
""")

    def test_routine_signature_mismatch_rejected(self):
        assert_rejected("""
DSTATUS<I> Pnp(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I] {
    int NotARoutine(int x) {
        return x;
    }
    IoSetCompletionRoutine(irp, NotARoutine);
    return IoCompleteRequest(irp, STATUS_SUCCESS());
}
""", Code.TYPE_MISMATCH)

    def test_routine_keeping_key_rejected_at_registration(self):
        # A routine with effect [K] (keep) does not match the declared
        # COMPLETION_ROUTINE type, which consumes the key.
        assert_rejected("""
DSTATUS<I> Pnp(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I] {
    tracked COMPLETION_RESULT<I> Keeper(DEVICE_OBJECT d,
                                        tracked(I) IRP i) [I] {
        return 'MoreProcessingRequired;
    }
    IoSetCompletionRoutine(irp, Keeper);
    return IoCompleteRequest(irp, STATUS_SUCCESS());
}
""", Code.TYPE_MISMATCH)


class TestEvents:
    def test_event_transfers_key(self):
        assert_ok("""
void f() {
    tracked(F) FILE file = fopen("x");
    KEVENT<F> ev = KeInitializeEvent(file);
    KeSignalEvent(ev);
    KeWaitForEvent(ev);
    fclose(file);
}
""")

    def test_signal_requires_key(self):
        assert_rejected("""
void f() {
    tracked(F) FILE file = fopen("x");
    KEVENT<F> ev = KeInitializeEvent(file);
    fclose(file);
    KeSignalEvent(ev);
}
""", Code.KEY_CONSUMED_MISSING)

    def test_double_wait_duplicates_key(self):
        assert_rejected("""
void f() {
    tracked(F) FILE file = fopen("x");
    KEVENT<F> ev = KeInitializeEvent(file);
    KeSignalEvent(ev);
    KeWaitForEvent(ev);
    KeWaitForEvent(ev);
    fclose(file);
}
""", Code.KEY_DUPLICATED)

    def test_access_between_signal_and_wait_rejected(self):
        assert_rejected("""
void f() {
    tracked(F) FILE file = fopen("x");
    KEVENT<F> ev = KeInitializeEvent(file);
    KeSignalEvent(ev);
    fputb(file, 1);
    KeWaitForEvent(ev);
    fclose(file);
}
""", Code.KEY_CONSUMED_MISSING)


class TestSpinLocks:
    GOOD = """
struct counter { int n; }
void work() [IRQL @ PASSIVE_LEVEL] {
    tracked(K) counter c = new tracked counter { n = 0; };
    KSPIN_LOCK<K> lock = KeInitializeSpinLock(c);
    KIRQL<old> saved = KeAcquireSpinLock(lock);
    c.n++;
    KeReleaseSpinLock(lock, saved);
}
"""

    def test_lock_protocol_accepted(self):
        assert_ok(self.GOOD)

    def test_access_without_lock(self):
        assert_rejected("""
struct counter { int n; }
void work() [IRQL @ PASSIVE_LEVEL] {
    tracked(K) counter c = new tracked counter { n = 0; };
    KSPIN_LOCK<K> lock = KeInitializeSpinLock(c);
    c.n++;
    KIRQL<old> saved = KeAcquireSpinLock(lock);
    KeReleaseSpinLock(lock, saved);
}
""", Code.KEY_NOT_HELD)

    def test_double_acquire(self):
        assert_rejected("""
struct counter { int n; }
void work() [IRQL @ PASSIVE_LEVEL] {
    tracked(K) counter c = new tracked counter { n = 0; };
    KSPIN_LOCK<K> lock = KeInitializeSpinLock(c);
    KIRQL<s1> a = KeAcquireSpinLock(lock);
    KIRQL<s2> b = KeAcquireSpinLock(lock);
    KeReleaseSpinLock(lock, b);
    KeReleaseSpinLock(lock, a);
}
""", Code.KEY_DUPLICATED)

    def test_missing_release(self):
        assert_rejected("""
struct counter { int n; }
void work() [IRQL @ PASSIVE_LEVEL] {
    tracked(K) counter c = new tracked counter { n = 0; };
    KSPIN_LOCK<K> lock = KeInitializeSpinLock(c);
    KIRQL<old> saved = KeAcquireSpinLock(lock);
    c.n++;
}
""", Code.KEY_LEAKED)

    def test_release_without_acquire(self):
        assert_rejected("""
struct counter { int n; }
void work(KSPIN_LOCK<K> lock, KIRQL<S> saved)
        [IRQL @ DISPATCH_LEVEL] {
    KeReleaseSpinLock(lock, saved);
}
""", Code.KEY_CONSUMED_MISSING)

    def test_irql_restored_by_release(self):
        # After release the IRQL must be back at the entry level; a
        # second acquire/release cycle still works.
        assert_ok("""
struct counter { int n; }
void work() [IRQL @ PASSIVE_LEVEL] {
    tracked(K) counter c = new tracked counter { n = 0; };
    KSPIN_LOCK<K> lock = KeInitializeSpinLock(c);
    KIRQL<s1> a = KeAcquireSpinLock(lock);
    c.n++;
    KeReleaseSpinLock(lock, a);
    KIRQL<s2> b = KeAcquireSpinLock(lock);
    c.n++;
    KeReleaseSpinLock(lock, b);
}
""")


class TestIrql:
    def test_passive_level_requirement(self):
        assert_rejected("""
void f(KTHREAD t) [IRQL @ DISPATCH_LEVEL] {
    KPRIORITY p = KeSetPriorityThread(t, 3);
}
""", Code.KEY_WRONG_STATE)

    def test_passive_level_satisfied(self):
        assert_ok("""
void f(KTHREAD t) [IRQL @ PASSIVE_LEVEL] {
    KPRIORITY p = KeSetPriorityThread(t, 3);
}
""")

    def test_bounded_requirement_from_bounded_context(self):
        assert_ok("""
void f(KSEMAPHORE s) [IRQL @ (lvl <= APC_LEVEL)] {
    int r = KeReleaseSemaphore(s, 1, 0);
}
""")

    def test_bounded_requirement_violated(self):
        assert_rejected("""
void f(KSEMAPHORE s) [IRQL @ DIRQL] {
    int r = KeReleaseSemaphore(s, 1, 0);
}
""", Code.KEY_WRONG_STATE)

    def test_unannotated_function_cannot_assume_level(self):
        assert_rejected("""
void f(KTHREAD t) {
    KPRIORITY p = KeSetPriorityThread(t, 3);
}
""", Code.KEY_WRONG_STATE)

    def test_raise_lower_restores(self):
        assert_ok("""
void f() [IRQL @ PASSIVE_LEVEL] {
    KIRQL<old> saved = KeRaiseIrqlToDpcLevel();
    KeLowerIrql(saved);
}
""")

    def test_undeclared_irql_change_rejected(self):
        assert_rejected("""
void f() [IRQL @ PASSIVE_LEVEL] {
    KIRQL<old> saved = KeRaiseIrqlToDpcLevel();
}
""", Code.POSTCONDITION_MISMATCH)

    def test_declared_irql_transition(self):
        assert_ok("""
KIRQL<S> go_up() [IRQL @ (S <= DISPATCH_LEVEL) -> DISPATCH_LEVEL] {
    return KeRaiseIrqlToDpcLevel();
}
void f() [IRQL @ PASSIVE_LEVEL] {
    KIRQL<old> saved = go_up();
    KeLowerIrql(saved);
}
""")


class TestPagedMemory:
    CONFIG = "struct config { int a; int b; }\n"

    def test_paged_access_at_passive(self):
        assert_ok(self.CONFIG + """
int f(paged<config> cfg) [IRQL @ PASSIVE_LEVEL] {
    return cfg.a + cfg.b;
}
""")

    def test_paged_access_at_apc(self):
        assert_ok(self.CONFIG + """
int f(paged<config> cfg) [IRQL @ APC_LEVEL] {
    return cfg.a;
}
""")

    def test_paged_access_at_dispatch_rejected(self):
        assert_rejected(self.CONFIG + """
int f(paged<config> cfg) [IRQL @ DISPATCH_LEVEL] {
    return cfg.a;
}
""", Code.KEY_WRONG_STATE)

    def test_paged_access_with_bounded_apc_ok(self):
        assert_ok(self.CONFIG + """
int f(paged<config> cfg) [IRQL @ (lvl <= APC_LEVEL)] {
    return cfg.a;
}
""")

    def test_paged_access_with_bounded_dispatch_rejected(self):
        # lvl <= DISPATCH does not imply lvl <= APC.
        assert_rejected(self.CONFIG + """
int f(paged<config> cfg) [IRQL @ (lvl <= DISPATCH_LEVEL)] {
    return cfg.a;
}
""", Code.KEY_WRONG_STATE)

    def test_paged_access_after_acquiring_lock_rejected(self):
        # Acquiring a spin lock raises to DISPATCH — paged data becomes
        # untouchable until release.
        assert_rejected(self.CONFIG + """
struct counter { int n; }
int f(paged<config> cfg) [IRQL @ PASSIVE_LEVEL] {
    tracked(K) counter c = new tracked counter { n = 0; };
    KSPIN_LOCK<K> lock = KeInitializeSpinLock(c);
    KIRQL<old> saved = KeAcquireSpinLock(lock);
    int v = cfg.a;
    KeReleaseSpinLock(lock, saved);
    return v;
}
""", Code.KEY_WRONG_STATE)

    def test_paged_access_after_release_ok(self):
        assert_ok(self.CONFIG + """
struct counter { int n; }
int f(paged<config> cfg) [IRQL @ PASSIVE_LEVEL] {
    tracked(K) counter c = new tracked counter { n = 0; };
    KSPIN_LOCK<K> lock = KeInitializeSpinLock(c);
    KIRQL<old> saved = KeAcquireSpinLock(lock);
    c.n++;
    KeReleaseSpinLock(lock, saved);
    return cfg.a;
}
""")
