"""Interpreter tests: language semantics and runtime protocol faults."""

import pytest

from repro.api import load_context
from repro.diagnostics import Code, RuntimeProtocolError
from repro.runtime.values import VArray, VStruct, VVariant
from repro.stdlib.hostimpl import create_host, make_interpreter

from conftest import run_program


def run(source, entry="main"):
    result, _host = run_program(source, entry)
    return result


class TestExpressions:
    def test_arithmetic(self):
        assert run("int main() { return 2 + 3 * 4; }") == 14

    def test_division_truncates_toward_zero(self):
        assert run("int main() { return (0 - 7) / 2; }") == -3

    def test_modulo(self):
        assert run("int main() { return 17 % 5; }") == 2

    def test_division_by_zero_faults(self):
        with pytest.raises(RuntimeProtocolError):
            run("int main() { int z = 0; return 1 / z; }")

    def test_comparison_and_logic(self):
        assert run("bool main() { return 1 < 2 && !(3 <= 2); }") is True

    def test_short_circuit_and(self):
        # The right operand would divide by zero if evaluated.
        assert run("""
bool main() {
    int z = 0;
    return false && (1 / z) > 0;
}
""") is False

    def test_string_concat(self):
        assert run('string main() { return "ab" + "cd"; }') == "abcd"

    def test_string_index(self):
        assert run('char main() { string s = "xyz"; return s[1]; }') == "y"

    def test_unary_ops(self):
        assert run("int main() { return -(3 + 4); }") == -7

    def test_array_literal_and_index(self):
        assert run("""
int main() {
    byte[] a = [10, 20, 30];
    a[1] = 25;
    return a[0] + a[1] + a[2];
}
""") == 65

    def test_array_out_of_bounds_faults(self):
        with pytest.raises(RuntimeProtocolError):
            run("int main() { byte[] a = [1]; return a[5]; }")


class TestStatements:
    def test_while_loop(self):
        assert run("""
int main() {
    int i = 0;
    int acc = 0;
    while (i < 5) { acc += i; i++; }
    return acc;
}
""") == 10

    def test_break_and_continue(self):
        assert run("""
int main() {
    int i = 0;
    int acc = 0;
    while (true) {
        i++;
        if (i > 10) { break; }
        if (i % 2 == 0) { continue; }
        acc += i;
    }
    return acc;
}
""") == 25

    def test_if_else_chain(self):
        assert run("""
int classify(int x) {
    if (x < 0) { return 0 - 1; }
    else { if (x == 0) { return 0; } else { return 1; } }
}
int main() { return classify(5) * 100 + classify(0) * 10 + classify(-3); }
""") == 100 - 1

    def test_incdec_on_fields(self):
        assert run("""
struct point { int x; int y; }
int main() {
    point p = new point { x = 1; y = 2; };
    p.x++;
    p.y--;
    return p.x * 10 + p.y;
}
""") == 21

    def test_compound_assignment(self):
        assert run("int main() { int x = 10; x += 5; x -= 3; return x; }") \
            == 12


class TestVariantsAndSwitch:
    def test_switch_matches_ctor(self):
        assert run("""
variant opt [ 'None | 'Some(int) ];
int main() {
    opt v = 'Some(7);
    switch (v) {
        case 'None: return 0;
        case 'Some(n): return n;
    }
}
""") == 7

    def test_switch_default(self):
        assert run("""
variant color [ 'R | 'G | 'B ];
int main() {
    color c = 'G;
    switch (c) {
        case 'R: return 1;
        default: return 9;
    }
}
""") == 9

    def test_variant_equality(self):
        assert run("""
variant opt [ 'None | 'Some(int) ];
bool main() {
    opt a = 'Some(3);
    opt b = 'Some(3);
    return a == b;
}
""") is True

    def test_nested_variants(self):
        assert run("""
variant lst [ 'Nil | 'Cons(int, lst) ];
int total(lst l) {
    switch (l) {
        case 'Nil: return 0;
        case 'Cons(h, t): return h + total(t);
    }
}
int main() { return total('Cons(1, 'Cons(2, 'Cons(3, 'Nil)))); }
""") == 6


class TestFunctions:
    def test_recursion(self):
        assert run("""
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(10); }
""") == 55

    def test_nested_function_closure(self):
        assert run("""
int main() {
    int base = 10;
    int add(int x) { return x + base; }
    return add(1) + add(2);
}
""") == 23

    def test_function_as_value(self):
        assert run("""
int twice(int x) { return x * 2; }
int apply(int v) {
    int f(int x) { return twice(x) + 1; }
    return f(v);
}
int main() { return apply(5); }
""") == 11

    def test_module_function_call(self):
        assert run("""
int main() {
    tracked(R) region rgn = Region.create();
    int n = Region.size(rgn);
    Region.delete(rgn);
    return n;
}
""") == 0


class TestRuntimeProtocolFaults:
    def test_dangling_region_access(self):
        with pytest.raises(RuntimeProtocolError) as exc:
            run("""
struct point { int x; int y; }
int main() {
    tracked(R) region rgn = Region.create();
    R:point p = new(rgn) point {x=1; y=2;};
    Region.delete(rgn);
    return p.x;
}
""")
        assert exc.value.code is Code.RT_DANGLING

    def test_double_region_delete(self):
        with pytest.raises(RuntimeProtocolError) as exc:
            run("""
void main() {
    tracked(R) region rgn = Region.create();
    Region.delete(rgn);
    Region.delete(rgn);
}
""")
        assert exc.value.code is Code.RT_DOUBLE_FREE

    def test_region_leak_caught_by_audit(self):
        _result, host = run_program("""
void main() {
    tracked(R) region rgn = Region.create();
}
""")
        assert host.audit() == ["region region1"] or host.audit()

    def test_double_free_struct(self):
        with pytest.raises(RuntimeProtocolError) as exc:
            run("""
struct point { int x; int y; }
void main() {
    tracked(K) point p = new tracked point {x=1; y=2;};
    free(p);
    free(p);
}
""")
        assert exc.value.code is Code.RT_DOUBLE_FREE

    def test_use_after_free_struct(self):
        with pytest.raises(RuntimeProtocolError) as exc:
            run("""
struct point { int x; int y; }
int main() {
    tracked(K) point p = new tracked point {x=1; y=2;};
    free(p);
    return p.x;
}
""")
        assert exc.value.code is Code.RT_DANGLING

    def test_file_use_after_close(self):
        with pytest.raises(RuntimeProtocolError):
            run("""
int main() {
    tracked(F) FILE f = fopen("x");
    fclose(f);
    return flen(f);
}
""")

    def test_socket_protocol_fault(self):
        with pytest.raises(RuntimeProtocolError) as exc:
            run("""
void main() {
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    Socket.listen(s, 4);
    Socket.close(s);
}
""")
        assert exc.value.code is Code.RT_PROTOCOL

    def test_step_budget_stops_infinite_loops(self):
        ctx, reporter = load_context("void main() { while (true) { } }")
        host = create_host()
        interp = make_interpreter(ctx, host)
        interp.max_steps = 10_000
        with pytest.raises(RuntimeProtocolError):
            interp.call("main")
