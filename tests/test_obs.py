"""Unit tests for the observability layer (repro.obs)."""

import json

import pytest

from repro.obs import (EventLog, MetricsRegistry, NULL_METRICS, NULL_TRACER,
                       RATIO_BUCKETS, Telemetry, Tracer, activate,
                       current_tracer, validate_chrome_trace)


class TestTracer:
    def test_span_records_complete_event(self):
        tracer = Tracer(process_name="t", pid=123)
        with tracer.span("work", function="f"):
            pass
        spans = [e for e in tracer.events if e["ph"] == "X"]
        assert len(spans) == 1
        event = spans[0]
        assert event["name"] == "work"
        assert event["pid"] == 123
        assert event["dur"] >= 0
        assert event["args"] == {"function": "f"}

    def test_first_event_emits_process_name_metadata(self):
        tracer = Tracer(process_name="my proc", pid=7)
        tracer.instant("mark")
        assert tracer.events[0]["ph"] == "M"
        assert tracer.events[0]["args"]["name"] == "my proc"

    def test_export_is_loadable_chrome_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = str(tmp_path / "trace.json")
        tracer.export(path)
        with open(path) as handle:
            payload = json.load(handle)
        assert validate_chrome_trace(payload) == []
        assert payload["displayTimeUnit"] == "ms"
        names = [e["name"] for e in payload["traceEvents"]]
        assert "outer" in names and "inner" in names

    def test_drain_and_absorb_merge_tracks(self):
        worker = Tracer(process_name="worker", pid=1000)
        with worker.span("child_work"):
            pass
        parent = Tracer(process_name="main", pid=1)
        with parent.span("parent_work"):
            pass
        parent.absorb(worker.drain())
        assert worker.events == []
        pids = {e["pid"] for e in parent.events}
        assert pids == {1, 1000}

    def test_phase_totals_sums_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("lex"):
                pass
        totals = tracer.phase_totals()
        assert totals["lex"] >= 0
        assert set(totals) == {"lex"}

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything", arg=1):
            pass
        NULL_TRACER.instant("x")
        assert NULL_TRACER.drain() == []
        assert NULL_TRACER.phase_totals() == {}
        with pytest.raises(RuntimeError):
            NULL_TRACER.export("/nonexistent/nope.json")

    def test_activate_installs_and_restores(self):
        tracer = Tracer()
        assert current_tracer() is NULL_TRACER
        with activate(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_validate_rejects_malformed_events(self):
        bad = {"traceEvents": [{"ph": "X"}, {"name": "a", "ph": "?",
                                             "ts": 0, "pid": 1}]}
        problems = validate_chrome_trace(bad)
        assert any("missing required key" in p for p in problems)
        assert any("unknown phase" in p for p in problems)
        assert validate_chrome_trace({}) != []


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        hist = reg.histogram("h")
        hist.observe(0.0002)
        hist.observe(100.0)   # overflow bucket
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 3}
        assert snap["g"]["value"] == 1.5
        assert snap["h"]["count"] == 2
        assert snap["h"]["bucket_counts"][-1] == 1

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_merge_adds_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(1)
        b.counter("n").inc(2)
        a.histogram("h", RATIO_BUCKETS).observe(1.07)
        b.histogram("h", RATIO_BUCKETS).observe(1.07)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["n"]["value"] == 3
        assert snap["h"]["count"] == 2
        assert sum(snap["h"]["bucket_counts"]) == 2

    def test_merge_rejects_mismatched_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", (1.0, 2.0)).observe(0.5)
        b.histogram("h", (5.0, 6.0)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_drain_resets(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        assert reg.drain()["c"]["value"] == 1
        assert reg.snapshot() == {}

    def test_null_metrics_records_nothing(self):
        assert not NULL_METRICS.enabled
        NULL_METRICS.counter("c").inc()
        NULL_METRICS.gauge("g").set(5)
        NULL_METRICS.histogram("h").observe(1)
        assert NULL_METRICS.snapshot() == {}
        assert NULL_METRICS.render_rows() == []

    def test_render_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(4)
        reg.histogram("lat").observe(0.2)
        text = reg.render()
        assert "hits" in text and "4" in text
        assert "lat" in text and "count=1" in text


class TestEventLog:
    def test_emit_and_query(self):
        log = EventLog()
        log.emit("worker_crash", "boom", pid=42, functions=["f", "g"])
        log.emit("other", "fine")
        crashes = log.by_kind("worker_crash")
        assert len(crashes) == 1
        assert crashes[0].fields["pid"] == 42
        assert crashes[0].pid > 0 and crashes[0].ts > 0
        assert "boom" in crashes[0].render()

    def test_subscribers_fire_on_emit_and_absorb(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.emit("a", "one")
        other = EventLog()
        other.emit("b", "two")
        log.absorb(other.drain())
        assert [e.kind for e in seen] == ["a", "b"]
        assert other.records == []
        assert [e.kind for e in log.records] == ["a", "b"]


class TestTelemetry:
    def test_default_is_disabled(self):
        tele = Telemetry()
        assert not tele.enabled
        assert tele.tracer is NULL_TRACER
        assert tele.metrics is NULL_METRICS
        assert tele.events.records == []

    def test_enabled_bundle_snapshot(self):
        tele = Telemetry(trace=True, metrics=True)
        assert tele.enabled
        with tele.tracer.span("s"):
            pass
        tele.metrics.counter("c").inc()
        tele.events.emit("k", "msg")
        snap = tele.snapshot()
        assert snap["metrics"]["c"]["value"] == 1
        assert snap["events"][0]["kind"] == "k"
        assert isinstance(snap["profile"], dict)
