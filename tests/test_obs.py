"""Unit tests for the observability layer (repro.obs)."""

import json

import pytest

from repro.obs import (EventLog, JsonlEventWriter, MetricsRegistry,
                       NULL_METRICS, NULL_TRACER, RATIO_BUCKETS, Telemetry,
                       TimeSeriesRing, TraceRing, Tracer, activate,
                       bucket_quantile, current_tracer, open_event_log,
                       render_exposition, validate_chrome_trace,
                       validate_exposition, write_textfile)


class TestTracer:
    def test_span_records_complete_event(self):
        tracer = Tracer(process_name="t", pid=123)
        with tracer.span("work", function="f"):
            pass
        spans = [e for e in tracer.events if e["ph"] == "X"]
        assert len(spans) == 1
        event = spans[0]
        assert event["name"] == "work"
        assert event["pid"] == 123
        assert event["dur"] >= 0
        assert event["args"] == {"function": "f"}

    def test_first_event_emits_process_name_metadata(self):
        tracer = Tracer(process_name="my proc", pid=7)
        tracer.instant("mark")
        assert tracer.events[0]["ph"] == "M"
        assert tracer.events[0]["args"]["name"] == "my proc"

    def test_export_is_loadable_chrome_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = str(tmp_path / "trace.json")
        tracer.export(path)
        with open(path) as handle:
            payload = json.load(handle)
        assert validate_chrome_trace(payload) == []
        assert payload["displayTimeUnit"] == "ms"
        names = [e["name"] for e in payload["traceEvents"]]
        assert "outer" in names and "inner" in names

    def test_drain_and_absorb_merge_tracks(self):
        worker = Tracer(process_name="worker", pid=1000)
        with worker.span("child_work"):
            pass
        parent = Tracer(process_name="main", pid=1)
        with parent.span("parent_work"):
            pass
        parent.absorb(worker.drain())
        assert worker.events == []
        pids = {e["pid"] for e in parent.events}
        assert pids == {1, 1000}

    def test_phase_totals_sums_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("lex"):
                pass
        totals = tracer.phase_totals()
        assert totals["lex"] >= 0
        assert set(totals) == {"lex"}

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything", arg=1):
            pass
        NULL_TRACER.instant("x")
        assert NULL_TRACER.drain() == []
        assert NULL_TRACER.phase_totals() == {}
        with pytest.raises(RuntimeError):
            NULL_TRACER.export("/nonexistent/nope.json")

    def test_activate_installs_and_restores(self):
        tracer = Tracer()
        assert current_tracer() is NULL_TRACER
        with activate(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_validate_rejects_malformed_events(self):
        bad = {"traceEvents": [{"ph": "X"}, {"name": "a", "ph": "?",
                                             "ts": 0, "pid": 1}]}
        problems = validate_chrome_trace(bad)
        assert any("missing required key" in p for p in problems)
        assert any("unknown phase" in p for p in problems)
        assert validate_chrome_trace({}) != []

    def test_validate_rejects_missing_ph(self):
        bad = {"traceEvents": [{"name": "a", "ts": 0, "pid": 1}]}
        problems = validate_chrome_trace(bad)
        assert any("missing required key 'ph'" in p for p in problems)

    def test_validate_rejects_non_numeric_ts_and_dur(self):
        bad = {"traceEvents": [
            {"name": "a", "ph": "i", "ts": "soon", "pid": 1},
            {"name": "b", "ph": "X", "ts": 0, "dur": True, "pid": 1},
            {"name": "c", "ph": "i", "ts": True, "pid": 1}]}
        problems = validate_chrome_trace(bad)
        assert sum("ts must be numeric" in p for p in problems) == 2
        assert any("dur must be numeric" in p for p in problems)

    def test_validate_rejects_truncated_top_level(self):
        # A reader that got a torn/truncated payload sees a non-dict
        # (or a dict without traceEvents) — both must be one clean
        # violation, not a crash.
        for payload in (None, [], "trunc", {"other": 1}):
            problems = validate_chrome_trace(payload)
            assert problems == ["top level must be an object with a "
                                "'traceEvents' list"]
        assert validate_chrome_trace({"traceEvents": "nope"}) == \
            ["'traceEvents' must be a list"]


class TestTraceRing:
    def test_write_prunes_to_keep(self, tmp_path):
        ring = TraceRing(str(tmp_path / "traces"), keep=3)
        paths = [ring.write({"traceEvents": [], "n": i}) for i in range(6)]
        kept = ring.paths()
        assert len(kept) == 3
        assert kept == sorted(paths[-3:])
        with open(kept[-1]) as handle:
            assert json.load(handle)["n"] == 5

    def test_paths_empty_without_directory(self, tmp_path):
        assert TraceRing(str(tmp_path / "never")).paths() == []


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        hist = reg.histogram("h")
        hist.observe(0.0002)
        hist.observe(100.0)   # overflow bucket
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 3}
        assert snap["g"]["value"] == 1.5
        assert snap["h"]["count"] == 2
        assert snap["h"]["bucket_counts"][-1] == 1

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_merge_adds_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(1)
        b.counter("n").inc(2)
        a.histogram("h", RATIO_BUCKETS).observe(1.07)
        b.histogram("h", RATIO_BUCKETS).observe(1.07)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["n"]["value"] == 3
        assert snap["h"]["count"] == 2
        assert sum(snap["h"]["bucket_counts"]) == 2

    def test_merge_rejects_mismatched_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", (1.0, 2.0)).observe(0.5)
        b.histogram("h", (5.0, 6.0)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_drain_resets(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        assert reg.drain()["c"]["value"] == 1
        assert reg.snapshot() == {}

    def test_null_metrics_records_nothing(self):
        assert not NULL_METRICS.enabled
        NULL_METRICS.counter("c").inc()
        NULL_METRICS.gauge("g").set(5)
        NULL_METRICS.histogram("h").observe(1)
        assert NULL_METRICS.snapshot() == {}
        assert NULL_METRICS.render_rows() == []

    def test_render_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(4)
        reg.histogram("lat").observe(0.2)
        text = reg.render()
        assert "hits" in text and "4" in text
        assert "lat" in text and "count=1" in text


class TestEventLog:
    def test_emit_and_query(self):
        log = EventLog()
        log.emit("worker_crash", "boom", pid=42, functions=["f", "g"])
        log.emit("other", "fine")
        crashes = log.by_kind("worker_crash")
        assert len(crashes) == 1
        assert crashes[0].fields["pid"] == 42
        assert crashes[0].pid > 0 and crashes[0].ts > 0
        assert "boom" in crashes[0].render()

    def test_subscribers_fire_on_emit_and_absorb(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.emit("a", "one")
        other = EventLog()
        other.emit("b", "two")
        log.absorb(other.drain())
        assert [e.kind for e in seen] == ["a", "b"]
        assert other.records == []
        assert [e.kind for e in log.records] == ["a", "b"]


class TestTelemetry:
    def test_default_is_disabled(self):
        tele = Telemetry()
        assert not tele.enabled
        assert tele.tracer is NULL_TRACER
        assert tele.metrics is NULL_METRICS
        assert tele.events.records == []

    def test_enabled_bundle_snapshot(self):
        tele = Telemetry(trace=True, metrics=True)
        assert tele.enabled
        with tele.tracer.span("s"):
            pass
        tele.metrics.counter("c").inc()
        tele.events.emit("k", "msg")
        snap = tele.snapshot()
        assert snap["metrics"]["c"]["value"] == 1
        assert snap["events"][0]["kind"] == "k"
        assert isinstance(snap["profile"], dict)


class TestQuantiles:
    def test_empty_histogram_is_zero(self):
        reg = MetricsRegistry()
        assert reg.histogram("h").quantile(0.5) == 0.0

    def test_interpolates_within_bucket(self):
        # Ten observations in the (1.0, 2.0] bucket: p50 sits in the
        # middle of the bucket under the Prometheus linear model.
        hist = MetricsRegistry().histogram("h", (1.0, 2.0))
        for _ in range(10):
            hist.observe(1.5)
        assert hist.quantile(0.5) == pytest.approx(1.5)
        assert hist.quantile(1.0) == pytest.approx(2.0)

    def test_quantiles_are_monotone(self):
        hist = MetricsRegistry().histogram("h")
        for value in (0.0002, 0.003, 0.02, 0.4, 2.0, 0.004):
            hist.observe(value)
        p50, p95, p99 = (hist.quantile(q) for q in (0.5, 0.95, 0.99))
        assert 0 <= p50 <= p95 <= p99

    def test_overflow_clamps_to_highest_bound(self):
        hist = MetricsRegistry().histogram("h", (1.0, 2.0))
        hist.observe(50.0)
        assert hist.quantile(0.99) == 2.0

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            bucket_quantile((1.0,), (1,), 1.5)
        with pytest.raises(ValueError):
            bucket_quantile((1.0,), (1,), -0.1)

    def test_render_rows_carry_quantiles(self):
        reg = MetricsRegistry()
        reg.histogram("lat").observe(0.2)
        ((_name, value),) = reg.render_rows()
        assert "p50=" in value and "p95=" in value and "p99=" in value


class TestTimeSeriesRing:
    def test_sample_computes_rates_and_quantiles(self):
        reg = MetricsRegistry()
        ring = TimeSeriesRing(interval=10.0)
        ring.sample(reg, now=0.0)                 # baseline
        reg.counter("server.requests").inc(50)
        reg.gauge("depth").set(3)
        hist = reg.histogram("server.check_seconds")
        for _ in range(4):
            hist.observe(0.002)
        sample = ring.sample(reg, now=20.0)
        assert sample["dt"] == pytest.approx(20.0)
        assert sample["rates"]["server.requests"] == pytest.approx(2.5)
        assert sample["gauges"]["depth"] == 3
        q = sample["quantiles"]["server.check_seconds"]
        assert q["count"] == 4
        assert q["p50"] <= q["p95"] <= q["p99"]

    def test_maybe_sample_waits_for_interval(self):
        reg = MetricsRegistry()
        ring = TimeSeriesRing(interval=5.0)
        assert ring.maybe_sample(reg, now=0.0) is not None   # first sample
        assert ring.maybe_sample(reg, now=2.0) is None
        assert ring.maybe_sample(reg, now=5.1) is not None

    def test_capacity_bounds_window(self):
        reg = MetricsRegistry()
        ring = TimeSeriesRing(interval=1.0, capacity=4)
        for i in range(10):
            ring.sample(reg, now=float(i))
        assert len(ring) == 4
        assert ring.describe()["capacity"] == 4

    def test_quiet_interval_records_no_rates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        ring = TimeSeriesRing(interval=1.0)
        ring.sample(reg, now=0.0)
        sample = ring.sample(reg, now=1.0)        # no new increments
        assert sample["rates"] == {}
        assert sample["quantiles"] == {}


class TestExposition:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.counter("server.requests").inc(7)
        reg.gauge("pool.workers").set(2)
        hist = reg.histogram("server.check_seconds")
        hist.observe(0.002)
        hist.observe(3.0)
        return reg.snapshot()

    def test_render_validates_clean(self):
        text = render_exposition(self._snapshot(),
                                 extra_gauges={"vaultc_uptime_seconds": 4.2})
        assert validate_exposition(text) == []
        assert "# TYPE vaultc_server_requests_total counter" in text
        assert "vaultc_server_requests_total 7" in text
        assert 'vaultc_server_check_seconds_bucket{le="+Inf"} 2' in text
        assert "vaultc_uptime_seconds 4.2" in text

    def test_validator_flags_garbage(self):
        assert validate_exposition("not a metric line!") != []
        assert validate_exposition("ok_metric notafloat") != []
        broken = ('h_bucket{le="0.1"} 5\n'
                  'h_bucket{le="0.5"} 3\n'
                  'h_bucket{le="+Inf"} 5\nh_count 5\n')
        assert any("not cumulative" in p
                   for p in validate_exposition(broken))
        mismatch = 'h_bucket{le="+Inf"} 5\nh_count 6\n'
        assert any("+Inf bucket != _count" in p
                   for p in validate_exposition(mismatch))

    def test_write_textfile_is_atomic_replace(self, tmp_path):
        path = str(tmp_path / "sub" / "metrics.prom")
        write_textfile(path, "a 1\n")
        write_textfile(path, "a 2\n")
        with open(path) as handle:
            assert handle.read() == "a 2\n"
        leftovers = [n for n in (tmp_path / "sub").iterdir()
                     if n.name != "metrics.prom"]
        assert leftovers == []


class TestJsonlEventWriter:
    def test_subscriber_exception_is_isolated(self):
        log = EventLog()
        seen = []

        def _broken(_event):
            raise RuntimeError("sink down")

        log.subscribe(_broken)
        log.subscribe(seen.append)
        event = log.emit("k", "msg")
        assert log.subscriber_errors == 1
        assert seen == [event]                  # later subscribers still fire
        log.absorb([event])
        assert log.subscriber_errors == 2

    def test_writes_one_json_line_per_event(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        log = EventLog()
        writer = open_event_log(path, log)
        try:
            log.emit("server_start", "up", pid_field=1)
            log.emit("server_stop", "down", obj=object())   # repr-degraded
        finally:
            writer.close()
        with open(path) as handle:
            lines = [json.loads(line) for line in handle]
        assert [line["kind"] for line in lines] == ["server_start",
                                                    "server_stop"]
        assert lines[0]["fields"]["pid_field"] == 1
        assert "object" in lines[1]["fields"]["obj"]

    def test_rotation_bounds_disk(self, tmp_path):
        path = str(tmp_path / "audit.jsonl")
        writer = JsonlEventWriter(path, max_bytes=1024, backups=2)
        log = EventLog()
        log.subscribe(writer)
        try:
            for i in range(200):
                log.emit("tick", "x" * 64, n=i)
        finally:
            writer.close()
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["audit.jsonl", "audit.jsonl.1", "audit.jsonl.2"]
        for name in names:
            assert (tmp_path / name).stat().st_size <= 1024 + 256

    def test_open_event_log_none_path(self):
        assert open_event_log(None, EventLog()) is None
