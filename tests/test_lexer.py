"""Lexer unit tests."""

import pytest

from repro.diagnostics import LexError
from repro.syntax import tokenize
from repro.syntax.tokens import T


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def texts(source):
    return [t.text for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is T.EOF

    def test_identifier(self):
        assert kinds("hello") == [T.IDENT]

    def test_identifier_with_underscores_and_digits(self):
        toks = tokenize("_irp_2 x3")
        assert toks[0].text == "_irp_2"
        assert toks[1].text == "x3"

    def test_keywords_are_distinguished(self):
        assert kinds("tracked key stateset variant") == [
            T.KW_TRACKED, T.KW_KEY, T.KW_STATESET, T.KW_VARIANT]

    def test_keyword_prefix_is_identifier(self):
        assert kinds("trackedness") == [T.IDENT]

    def test_int_literal(self):
        toks = tokenize("42")
        assert toks[0].kind is T.INT
        assert toks[0].text == "42"

    def test_hex_literal(self):
        toks = tokenize("0x1F")
        assert toks[0].kind is T.INT
        assert int(toks[0].text, 0) == 31

    def test_float_literal(self):
        assert kinds("3.25") == [T.FLOAT]

    def test_float_with_exponent(self):
        assert kinds("1e9 2.5e-3") == [T.FLOAT, T.FLOAT]

    def test_int_then_dot_method_is_not_float(self):
        # ``1.x`` style: the dot must not glue to the int without digits
        assert kinds("7 .") == [T.INT, T.DOT]

    def test_string_literal(self):
        toks = tokenize('"hello world"')
        assert toks[0].kind is T.STRING
        assert toks[0].text == "hello world"

    def test_string_escapes(self):
        toks = tokenize(r'"a\nb\tc\\d\"e"')
        assert toks[0].text == 'a\nb\tc\\d"e'

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_constructor_token(self):
        toks = tokenize("'SomeKey")
        assert toks[0].kind is T.CTOR
        assert toks[0].text == "SomeKey"

    def test_char_literal(self):
        toks = tokenize("'a'")
        assert toks[0].kind is T.CHAR
        assert toks[0].text == "a"

    def test_underscore_token(self):
        assert kinds("_") == [T.UNDERSCORE]


class TestOperators:
    def test_single_char_operators(self):
        assert kinds("( ) { } [ ] ; , . : @ + - * / % ! < > = |") == [
            T.LPAREN, T.RPAREN, T.LBRACE, T.RBRACE, T.LBRACKET, T.RBRACKET,
            T.SEMI, T.COMMA, T.DOT, T.COLON, T.AT, T.PLUS, T.MINUS, T.STAR,
            T.SLASH, T.PERCENT, T.BANG, T.LT, T.GT, T.ASSIGN, T.PIPE]

    def test_two_char_operators(self):
        assert kinds("-> && || == != <= >= ++ -- += -=") == [
            T.ARROW, T.AMPAMP, T.PIPEPIPE, T.EQ, T.NE, T.LE, T.GE,
            T.PLUSPLUS, T.MINUSMINUS, T.PLUSEQ, T.MINUSEQ]

    def test_maximal_munch(self):
        # ``a->b`` is ARROW, not MINUS GT
        assert kinds("a->b") == [T.IDENT, T.ARROW, T.IDENT]

    def test_plusplus_vs_plus(self):
        assert kinds("a+++b") == [T.IDENT, T.PLUSPLUS, T.PLUS, T.IDENT]

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestTrivia:
    def test_line_comment(self):
        assert kinds("a // comment\n b") == [T.IDENT, T.IDENT]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [T.IDENT, T.IDENT]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_whitespace_is_skipped(self):
        assert kinds("  a\t\r\n  b ") == [T.IDENT, T.IDENT]


class TestSpans:
    def test_line_and_column_tracking(self):
        toks = tokenize("ab\n  cd")
        assert toks[0].span.start.line == 1
        assert toks[0].span.start.col == 1
        assert toks[1].span.start.line == 2
        assert toks[1].span.start.col == 3

    def test_filename_is_carried(self):
        toks = tokenize("x", filename="foo.vlt")
        assert toks[0].span.filename == "foo.vlt"

    def test_effect_clause_tokens(self):
        src = "[K@a->b, -L, +M, new N@c]"
        assert kinds(src) == [
            T.LBRACKET, T.IDENT, T.AT, T.IDENT, T.ARROW, T.IDENT, T.COMMA,
            T.MINUS, T.IDENT, T.COMMA, T.PLUS, T.IDENT, T.COMMA, T.KW_NEW,
            T.IDENT, T.AT, T.IDENT, T.RBRACKET]


class TestNextToken:
    """The streaming interface's end-of-input contract."""

    def test_serves_each_token_once_then_eof(self):
        from repro.syntax import Lexer
        lexer = Lexer("a b")
        assert lexer.next_token().text == "a"
        assert lexer.next_token().text == "b"
        assert lexer.next_token().kind is T.EOF

    def test_past_eof_raises_instead_of_reserving_eof(self):
        from repro.syntax import Lexer
        lexer = Lexer("x")
        lexer.next_token()                    # x
        eof = lexer.next_token()              # EOF, served exactly once
        assert eof.kind is T.EOF
        with pytest.raises(LexError, match="past end of input"):
            lexer.next_token()

    def test_past_eof_on_empty_input(self):
        from repro.syntax import Lexer
        lexer = Lexer("")
        assert lexer.next_token().kind is T.EOF
        with pytest.raises(LexError, match="past end of input"):
            lexer.next_token()
