"""Checker tests: function signatures, effect clauses, polymorphism
(§3.2), nested functions and function values (§4.3)."""

from repro.diagnostics import Code

from conftest import assert_ok, assert_rejected, codes


class TestEffectPolymorphism:
    def test_key_polymorphic_callee(self):
        # fclose can be called on any tracked file, whatever its key.
        assert_ok("""
void f() {
    tracked(A) FILE one = fopen("a");
    tracked(B) FILE two = fopen("b");
    fclose(two);
    fclose(one);
}
""")

    def test_rest_of_keyset_untouched(self):
        # Calling fclose(one) must not disturb two's key.
        assert_ok("""
void f() {
    tracked(A) FILE one = fopen("a");
    tracked(B) FILE two = fopen("b");
    fclose(one);
    fputb(two, 1);
    fclose(two);
}
""")

    def test_state_polymorphic_close(self):
        assert_ok("""
void close_any(tracked(S) sock s) [-S] {
    Socket.close(s);
}
""")

    def test_effectless_function_is_identity_on_keys(self):
        assert_ok("""
int peek(tracked(F) FILE f) {
    return flen(f);
}
void g() {
    tracked(F) FILE f = fopen("x");
    int n = peek(f);
    fclose(f);
}
""")

    def test_two_tracked_params_distinct_keys(self):
        assert_ok("""
void both(tracked(A) FILE a, tracked(B) FILE b) [-A, -B] {
    fclose(a);
    fclose(b);
}
void g() {
    tracked(X) FILE x = fopen("x");
    tracked(Y) FILE y = fopen("y");
    both(x, y);
}
""")

    def test_same_key_for_two_params(self):
        # guarded_int<F> correlates with the file's key (paper §2.1).
        assert_ok("""
type guarded_int<key K> = K:int;
int foo(tracked(F) FILE f, guarded_int<F> gi) [F] {
    return gi + flen(f);
}
""")

    def test_consume_precondition_missing(self):
        assert_rejected("""
void g(tracked(F) FILE f) [-F] {
    fclose(f);
    fclose(f);
}
""", Code.KEY_CONSUMED_MISSING)

    def test_promised_consume_not_performed(self):
        assert_rejected("""
void g(tracked(F) FILE f) [-F] {
    int n = flen(f);
}
""", Code.POSTCONDITION_MISMATCH)

    def test_undeclared_fresh_key_is_leak(self):
        assert_rejected("""
void g() {
    tracked(F) FILE f = fopen("x");
}
""", Code.KEY_LEAKED)

    def test_declared_fresh_key_returned(self):
        assert_ok("""
tracked(N) FILE open_log() [new N] {
    tracked(F) FILE f = fopen("log");
    fputb(f, 1);
    return f;
}
void g() {
    tracked(L) FILE log = open_log();
    fclose(log);
}
""")

    def test_return_type_names_key_without_new_item(self):
        assert_rejected("""
tracked(N) FILE broken() {
    tracked(F) FILE f = fopen("x");
    return f;
}
""", Code.KEY_ESCAPES_SCOPE)

    def test_fresh_key_wrong_state(self):
        assert_rejected("""
tracked(N) sock make() [new N@ready] {
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    return s;
}
""", Code.KEY_WRONG_STATE)


class TestCalls:
    def test_arity_mismatch(self):
        assert_rejected("""
void g() {
    tracked(F) FILE f = fopen("x", 1);
    fclose(f);
}
""", Code.ARITY_MISMATCH)

    def test_argument_type_mismatch(self):
        assert_rejected("""
void g() {
    tracked(F) FILE f = fopen(42);
    fclose(f);
}
""", Code.TYPE_MISMATCH)

    def test_unknown_function(self):
        assert_rejected("void g() { frobnicate(); }", Code.UNDEFINED_NAME)

    def test_unknown_module_function(self):
        assert_rejected("void g() { Region.frobnicate(); }",
                        Code.UNDEFINED_NAME)

    def test_passing_untracked_where_tracked_needed(self):
        assert_rejected("""
void g(int x) {
    fclose(x);
}
""", Code.TYPE_MISMATCH)

    def test_key_binding_conflict(self):
        # Both params demand the same key; passing distinct files fails.
        assert_rejected("""
void same(tracked(K) FILE a, tracked(K) FILE b) [K] { }
void g() {
    tracked(X) FILE x = fopen("x");
    tracked(Y) FILE y = fopen("y");
    same(x, y);
    fclose(x);
    fclose(y);
}
""", Code.TYPE_MISMATCH)

    def test_key_binding_same_alias_ok(self):
        assert_ok("""
void same(tracked(K) FILE a, tracked(K) FILE b) [K] { }
void g() {
    tracked(X) FILE x = fopen("x");
    tracked(X) FILE alias = x;
    same(x, alias);
    fclose(x);
}
""")

    def test_numeric_coercion_int_byte(self):
        assert_ok("""
void g(tracked(F) FILE f) [F] {
    fputb(f, 65);
}
""")


class TestNestedFunctions:
    def test_nested_function_closes_over_plain_values(self):
        assert_ok("""
int outer(int base) {
    int helper(int x) {
        return x + base;
    }
    return helper(1) + helper(2);
}
""")

    def test_nested_function_cannot_capture_tracked(self):
        result = codes("""
void outer() {
    tracked(R) region rgn = Region.create();
    void helper() {
        Region.delete(rgn);
    }
    helper();
    Region.delete(rgn);
}
""")
        assert Code.UNDEFINED_NAME in result

    def test_nested_function_with_own_effect_over_outer_key(self):
        # Figure 7's RegainIrp shape, distilled.
        assert_ok("""
void outer(tracked(F) FILE f) [-F] {
    KEVENT<F> done = KeInitializeEvent(f);
    void closer(tracked(F) FILE g) [-F] {
        KeSignalEvent(done);
    }
    closer(f);
    KeWaitForEvent(done);
    fclose(f);
}
""")

    def test_nested_effect_must_balance(self):
        assert_rejected("""
void outer(tracked(F) FILE f) [F] {
    void bad(tracked(F) FILE g) [F] {
        fclose(g);
    }
}
""", Code.POSTCONDITION_MISMATCH)


class TestModules:
    def test_module_implements_interface(self):
        assert_ok("""
interface COUNTER {
    int bump(int x);
}
module Counter : COUNTER {
    int bump(int x) {
        return x + 1;
    }
}
void g() {
    int v = Counter.bump(3);
}
""")

    def test_missing_interface_function(self):
        assert_rejected("""
interface COUNTER {
    int bump(int x);
}
module Counter : COUNTER {
}
""", Code.UNDEFINED_NAME)

    def test_conformance_signature_mismatch(self):
        assert_rejected("""
interface COUNTER {
    int bump(int x);
}
module Counter : COUNTER {
    int bump(string x) {
        return 1;
    }
}
""", Code.TYPE_MISMATCH)

    def test_conformance_effect_mismatch(self):
        assert_rejected("""
interface CLOSER {
    void shut(tracked(F) FILE f) [-F];
}
module Closer : CLOSER {
    void shut(tracked(F) FILE f) [F] {
    }
}
""", Code.TYPE_MISMATCH)

    def test_conformance_alpha_renaming_ok(self):
        assert_ok("""
interface CLOSER {
    void shut(tracked(F) FILE f) [-F];
}
module Closer : CLOSER {
    void shut(tracked(G) FILE handle) [-G] {
        fclose(handle);
    }
}
""")

    def test_duplicate_function_rejected(self):
        assert_rejected("""
int f() { return 1; }
int f() { return 2; }
""", Code.DUPLICATE_NAME)

    def test_duplicate_type_rejected(self):
        assert_rejected("""
struct s { int a; }
struct s { int b; }
""", Code.DUPLICATE_NAME)

    def test_unknown_interface(self):
        assert_rejected("extern module M : NOPE;", Code.UNDEFINED_NAME)


class TestReturns:
    def test_value_from_void_function(self):
        assert_rejected("void f() { return 3; }", Code.TYPE_MISMATCH)

    def test_missing_value_from_int_function(self):
        assert_rejected("int f() { return; }", Code.TYPE_MISMATCH)

    def test_wrong_return_type(self):
        assert_rejected('int f() { return "nope"; }', Code.TYPE_MISMATCH)

    def test_returning_packed_tracked(self):
        assert_ok("""
tracked FILE open_anon() {
    tracked(F) FILE f = fopen("x");
    return f;
}
void g() {
    tracked(H) FILE h = open_anon();
    fclose(h);
}
""")

    def test_packed_return_requires_live_key(self):
        assert_rejected("""
tracked FILE broken() {
    tracked(F) FILE f = fopen("x");
    fclose(f);
    return f;
}
""", Code.KEY_NOT_HELD)
