"""Parser unit tests: declarations, types, effects, statements,
expressions — including every Vault-specific construct the paper uses."""

import pytest

from repro.diagnostics import ParseError
from repro.syntax import ast, parse_expr, parse_program, parse_type


def decl(source):
    program = parse_program(source)
    assert len(program.decls) == 1
    return program.decls[0]


class TestTypes:
    def test_base_type(self):
        assert isinstance(parse_type("int"), ast.BaseType)

    def test_array_type(self):
        t = parse_type("byte[]")
        assert isinstance(t, ast.ArrayType)
        assert isinstance(t.elem, ast.BaseType)

    def test_nested_array(self):
        t = parse_type("int[][]")
        assert isinstance(t.elem, ast.ArrayType)

    def test_named_type_with_args(self):
        t = parse_type("opt_key<K>")
        assert isinstance(t, ast.NamedType)
        assert t.name == "opt_key"
        assert t.args[0].name == "K"

    def test_tracked_named_key(self):
        t = parse_type("tracked(R) region")
        assert isinstance(t, ast.TrackedType)
        assert t.key == "R"

    def test_tracked_anonymous(self):
        t = parse_type("tracked region")
        assert isinstance(t, ast.TrackedType)
        assert t.key is None

    def test_tracked_with_state(self):
        t = parse_type("tracked(@raw) sock")
        assert t.key is None
        assert isinstance(t.state, ast.StateRef)
        assert t.state.name == "raw"

    def test_tracked_key_and_state(self):
        t = parse_type("tracked(K@open) FILE")
        assert t.key == "K"
        assert t.state.name == "open"

    def test_guarded_type(self):
        t = parse_type("K:FILE")
        assert isinstance(t, ast.GuardedType)
        assert t.key == "K"
        assert t.state is None

    def test_guarded_type_with_state(self):
        t = parse_type("K@open:FILE")
        assert t.state.name == "open"

    def test_parenthesised_bounded_guard(self):
        t = parse_type("(IRQL @ (level <= APC_LEVEL)) : config")
        assert isinstance(t, ast.GuardedType)
        assert t.key == "IRQL"
        assert isinstance(t.state, ast.StateBound)
        assert t.state.var == "level"
        assert t.state.bound == "APC_LEVEL"

    def test_generic_type_argument_is_a_type(self):
        t = parse_type("array2d<float>")
        assert isinstance(t.args[0].type, ast.BaseType)


class TestDeclarations:
    def test_interface(self):
        d = decl("interface REGION { type region; "
                 "tracked(R) region create() [new R]; }")
        assert isinstance(d, ast.InterfaceDecl)
        assert d.name == "REGION"
        assert len(d.decls) == 2

    def test_extern_module(self):
        d = decl("extern module Region : REGION;")
        assert isinstance(d, ast.ModuleDecl)
        assert d.is_extern
        assert d.interface == "REGION"

    def test_module_with_body(self):
        d = decl("module M : I { int f() { return 1; } }")
        assert not d.is_extern
        assert len(d.decls) == 1

    def test_abstract_type(self):
        d = decl("type FILE;")
        assert isinstance(d, ast.TypeAliasDecl)
        assert d.rhs is None

    def test_type_alias(self):
        d = decl("type guarded_int<key K> = K:int;")
        assert d.params[0].kind == "key"
        assert isinstance(d.rhs, ast.GuardedType)

    def test_funtype_alias(self):
        d = decl("type CR<key K> = tracked RESULT<K> "
                 "Routine(DEVICE_OBJECT dev, tracked(K) IRP irp) [-K];")
        assert isinstance(d.rhs, ast.FunType)
        assert d.rhs.name == "Routine"
        assert len(d.rhs.params) == 2

    def test_variant_plain(self):
        d = decl("variant opt_int [ 'NoInt | 'SomeInt(int) ];")
        assert isinstance(d, ast.VariantDecl)
        assert [c.name for c in d.ctors] == ["NoInt", "SomeInt"]
        assert len(d.ctors[1].args) == 1

    def test_variant_with_keys(self):
        d = decl("variant status<key K> [ 'Ok {K@named} "
                 "| 'Error(int) {K@raw} ];")
        ok, err = d.ctors
        assert ok.keys[0][0] == "K"
        assert ok.keys[0][1].name == "named"
        assert err.args and err.keys[0][1].name == "raw"

    def test_struct(self):
        d = decl("struct point { int x; int y; }")
        assert isinstance(d, ast.StructDecl)
        assert [f.name for f in d.fields] == ["x", "y"]

    def test_struct_with_key_param(self):
        d = decl("struct fdo<key SK> { KSPIN_LOCK<SK> lock; }")
        assert d.params[0].kind == "key"

    def test_stateset_chain(self):
        d = decl("stateset L = [ a < b < c ];")
        assert d.states == ["a", "b", "c"]
        assert d.order == [("a", "b"), ("b", "c")]

    def test_stateset_multiple_chains(self):
        d = decl("stateset L = [ a < b, a < c ];")
        assert set(d.order) == {("a", "b"), ("a", "c")}

    def test_global_key(self):
        d = decl("key IRQL @ IRQ_LEVEL;")
        assert isinstance(d, ast.KeyDecl)
        assert d.stateset == "IRQ_LEVEL"

    def test_fun_decl_prototype(self):
        d = decl("void fclose(tracked(F) FILE f) [-F];")
        assert isinstance(d, ast.FunDecl)
        assert d.effect.items[0].mode == "consume"

    def test_fun_def(self):
        d = decl("int f(int x) { return x + 1; }")
        assert isinstance(d, ast.FunDef)

    def test_fun_with_explicit_type_params(self):
        d = decl("KEVENT<K> KeInitializeEvent<type T>(tracked(K) T obj) [K];")
        assert d.type_params[0].kind == "type"


class TestEffects:
    def parse_effect(self, text):
        return decl(f"void f() {text};").effect

    def test_keep_shorthand(self):
        eff = self.parse_effect("[K]")
        assert eff.items[0].mode == "keep"
        assert eff.items[0].pre is None

    def test_keep_with_states(self):
        eff = self.parse_effect("[S@raw->named]")
        item = eff.items[0]
        assert item.pre.name == "raw"
        assert item.post.name == "named"

    def test_consume(self):
        eff = self.parse_effect("[-K@a]")
        assert eff.items[0].mode == "consume"
        assert eff.items[0].pre.name == "a"

    def test_produce(self):
        eff = self.parse_effect("[+K@b]")
        assert eff.items[0].mode == "produce"
        assert eff.items[0].post.name == "b"

    def test_fresh(self):
        eff = self.parse_effect("[new N@ready]")
        assert eff.items[0].mode == "fresh"

    def test_multiple_items(self):
        eff = self.parse_effect("[S@listening, new N@ready]")
        assert len(eff.items) == 2

    def test_bounded_state(self):
        eff = self.parse_effect("[IRQL @ (level <= DISPATCH_LEVEL) "
                                "-> DISPATCH_LEVEL]")
        item = eff.items[0]
        assert isinstance(item.pre, ast.StateBound)
        assert item.pre.var == "level"
        assert item.post.name == "DISPATCH_LEVEL"

    def test_empty_effect(self):
        eff = self.parse_effect("[]")
        assert eff is not None
        assert eff.items == []


class TestStatements:
    def body(self, text):
        d = decl("void f() { %s }" % text)
        return d.body.stmts

    def test_var_decl(self):
        (s,) = self.body("int x = 1;")
        assert isinstance(s, ast.VarDecl)

    def test_var_decl_no_init(self):
        (s,) = self.body("tracked opt_key<F> flag;")
        assert s.init is None

    def test_expression_statement_is_not_a_decl(self):
        (s,) = self.body("f(x);")
        assert isinstance(s, ast.ExprStmt)

    def test_assignment(self):
        (s,) = self.body("x = y + 1;")
        assert isinstance(s, ast.Assign)
        assert s.op == "="

    def test_compound_assignment(self):
        (s,) = self.body("x += 2;")
        assert s.op == "+="

    def test_incdec(self):
        (s,) = self.body("pt.x++;")
        assert isinstance(s, ast.IncDec)
        assert isinstance(s.target, ast.FieldAccess)

    def test_if_else(self):
        (s,) = self.body("if (a) { x = 1; } else { x = 2; }")
        assert isinstance(s, ast.If)
        assert s.orelse is not None

    def test_while(self):
        (s,) = self.body("while (i < n) { i++; }")
        assert isinstance(s, ast.While)

    def test_return_value(self):
        (s,) = self.body("return 1 + 2;")
        assert isinstance(s, ast.Return)

    def test_free(self):
        (s,) = self.body("free(p);")
        assert isinstance(s, ast.Free)

    def test_break_continue(self):
        stmts = self.body("while (b) { break; } while (b) { continue; }")
        assert isinstance(stmts[0].body.stmts[0], ast.Break)
        assert isinstance(stmts[1].body.stmts[0], ast.Continue)

    def test_switch_with_patterns(self):
        (s,) = self.body(
            "switch (v) { case 'Ok: x = 1; case 'Error(code): x = code; }")
        assert isinstance(s, ast.Switch)
        assert s.cases[0].pattern.ctor == "Ok"
        assert s.cases[1].pattern.binders == ["code"]

    def test_switch_default(self):
        (s,) = self.body("switch (v) { case 'A: x = 1; default: x = 2; }")
        assert s.cases[1].pattern.ctor is None

    def test_switch_wildcard_binder(self):
        (s,) = self.body("switch (v) { case 'Cons(a, _): x = 1; }")
        assert s.cases[0].pattern.binders == ["a", None]

    def test_nested_function(self):
        (s,) = self.body(
            "tracked RES<I> Regain(DEVICE_OBJECT d, tracked(I) IRP i) [-I] "
            "{ return 'MoreProcessingRequired; }")
        assert isinstance(s, ast.LocalFun)
        assert s.fundef.decl.name == "Regain"

    def test_guarded_local_decl(self):
        (s,) = self.body("R:point pt = new(rgn) point {x=1; y=2;};")
        assert isinstance(s, ast.VarDecl)
        assert isinstance(s.type, ast.GuardedType)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, ast.Binary)
        assert e.op == "+"
        assert e.right.op == "*"

    def test_precedence_comparison_over_and(self):
        e = parse_expr("a < b && c > d")
        assert e.op == "&&"

    def test_unary(self):
        e = parse_expr("!done")
        assert isinstance(e, ast.Unary)

    def test_call_chain(self):
        e = parse_expr("Region.create()")
        assert isinstance(e, ast.Call)
        assert isinstance(e.fn, ast.FieldAccess)

    def test_index(self):
        e = parse_expr("buf[i + 1]")
        assert isinstance(e, ast.Index)

    def test_ctor_app_plain(self):
        e = parse_expr("'NoKey")
        assert isinstance(e, ast.CtorApp)
        assert e.args == [] and e.keys == []

    def test_ctor_app_with_keys(self):
        e = parse_expr("'SomeKey{F}")
        assert e.keys == ["F"]

    def test_ctor_app_args_and_keys(self):
        e = parse_expr("'Error(code){K}")
        assert len(e.args) == 1 and e.keys == ["K"]

    def test_ctor_nested(self):
        e = parse_expr("'Cons(rgn, 'Nil)")
        assert isinstance(e.args[1], ast.CtorApp)

    def test_new_tracked(self):
        e = parse_expr("new tracked point {x=3; y=4;}")
        assert isinstance(e, ast.New)
        assert e.tracked
        assert [i.name for i in e.inits] == ["x", "y"]

    def test_new_in_region(self):
        e = parse_expr("new(rgn) point {x=1; y=2;}")
        assert e.region is not None
        assert not e.tracked

    def test_new_with_type_args(self):
        e = parse_expr("new tracked fdo_data<SK> {}")
        assert e.type.args[0].name == "SK"

    def test_array_literal(self):
        e = parse_expr("[1, 2, 3]")
        assert isinstance(e, ast.ArrayLit)
        assert len(e.elems) == 3

    def test_empty_array_literal(self):
        e = parse_expr("[]")
        assert e.elems == []

    def test_parenthesised(self):
        e = parse_expr("(1 + 2) * 3")
        assert e.op == "*"

    def test_relational_not_confused_with_generics(self):
        e = parse_expr("a < b")
        assert isinstance(e, ast.Binary)


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("int f() { return 1 }")

    def test_unclosed_brace(self):
        with pytest.raises(ParseError):
            parse_program("void f() {")

    def test_bad_effect(self):
        with pytest.raises(ParseError):
            parse_program("void f() [K@@] { }")

    def test_garbage_toplevel(self):
        with pytest.raises(ParseError):
            parse_program(";;;")

    def test_case_requires_ctor(self):
        with pytest.raises(ParseError):
            parse_program("void f() { switch (x) { case 1: y = 2; } }")
