"""Checker tests: the region protocol (paper §2.2, Figures 1 & 2)."""

from repro.diagnostics import Code

from conftest import POINT, assert_ok, assert_rejected, codes


class TestFigure2:
    def test_okay_accepted(self):
        assert_ok(POINT + """
void okay() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=1; y=2;};
    pt.x++;
    Region.delete(rgn);
}
""")

    def test_dangling_rejected(self):
        assert_rejected(POINT + """
void dangling() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=1; y=2;};
    Region.delete(rgn);
    pt.x++;
}
""", Code.KEY_NOT_HELD)

    def test_leaky_rejected(self):
        assert_rejected(POINT + """
void leaky() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=1; y=2;};
    pt.x++;
}
""", Code.KEY_LEAKED)


class TestRegionVariations:
    def test_double_delete_rejected(self):
        assert_rejected("""
void f() {
    tracked(R) region rgn = Region.create();
    Region.delete(rgn);
    Region.delete(rgn);
}
""", Code.KEY_CONSUMED_MISSING)

    def test_two_regions_independent(self):
        assert_ok(POINT + """
void f() {
    tracked(A) region ra = Region.create();
    tracked(B) region rb = Region.create();
    A:point pa = new(ra) point {x=1; y=1;};
    B:point pb = new(rb) point {x=2; y=2;};
    Region.delete(ra);
    pb.x++;
    Region.delete(rb);
}
""")

    def test_wrong_region_guard_still_live(self):
        # Deleting region A invalidates A's objects but not B's.
        assert_rejected(POINT + """
void f() {
    tracked(A) region ra = Region.create();
    tracked(B) region rb = Region.create();
    A:point pa = new(ra) point {x=1; y=1;};
    Region.delete(ra);
    pa.y++;
    Region.delete(rb);
}
""", Code.KEY_NOT_HELD)

    def test_aliasing_regions_share_one_key(self):
        # rgn2 = rgn1 gives both names the same singleton type; deleting
        # through either invalidates both (paper §3.1).
        assert_rejected("""
void f() {
    tracked(R) region rgn1 = Region.create();
    tracked(R) region rgn2 = rgn1;
    Region.delete(rgn2);
    Region.delete(rgn1);
}
""", Code.KEY_CONSUMED_MISSING)

    def test_alias_declared_with_matching_key_ok(self):
        assert_ok("""
void f() {
    tracked(R) region rgn1 = Region.create();
    tracked(R) region rgn2 = rgn1;
    Region.delete(rgn2);
}
""")

    def test_alias_declared_with_wrong_key_rejected(self):
        assert_rejected("""
void f() {
    tracked(A) region r1 = Region.create();
    tracked(B) region r2 = Region.create();
    tracked(A) region r3 = r2;
    Region.delete(r1);
    Region.delete(r2);
}
""", Code.TYPE_MISMATCH)

    def test_region_passed_to_helper_with_keep_effect(self):
        assert_ok(POINT + """
int helper(tracked(R) region rgn) [R] {
    R:point p = new(rgn) point {x=1; y=2;};
    return p.x;
}
void f() {
    tracked(R) region rgn = Region.create();
    int v = helper(rgn);
    Region.delete(rgn);
}
""")

    def test_helper_that_consumes(self):
        assert_ok("""
void consume(tracked(R) region rgn) [-R] {
    Region.delete(rgn);
}
void f() {
    tracked(R) region rgn = Region.create();
    consume(rgn);
}
""")

    def test_use_after_consuming_helper_rejected(self):
        assert_rejected(POINT + """
void consume(tracked(R) region rgn) [-R] {
    Region.delete(rgn);
}
void f() {
    tracked(R) region rgn = Region.create();
    consume(rgn);
    R2:point p = new(rgn) point {x=1; y=2;};
}
""", Code.KEY_NOT_HELD)

    def test_helper_promising_keep_but_deleting_rejected(self):
        assert_rejected("""
void broken(tracked(R) region rgn) [R] {
    Region.delete(rgn);
}
""", Code.POSTCONDITION_MISMATCH)

    def test_helper_without_effect_must_not_consume(self):
        assert_rejected("""
void broken(tracked(R) region rgn) {
    Region.delete(rgn);
}
""", Code.POSTCONDITION_MISMATCH)

    def test_returning_fresh_region(self):
        assert_ok("""
tracked(N) region make() [new N] {
    tracked(R) region rgn = Region.create();
    return rgn;
}
void f() {
    tracked(R) region rgn = make();
    Region.delete(rgn);
}
""")

    def test_fresh_region_not_returned_is_leak(self):
        assert_rejected("""
tracked(N) region make() [new N] {
    tracked(R) region rgn = Region.create();
    tracked(S) region extra = Region.create();
    return rgn;
}
""", Code.KEY_LEAKED)

    def test_guarded_object_across_call_boundary(self):
        assert_ok(POINT + """
int use(tracked(R) region rgn, R:point p) [R] {
    return p.x + p.y;
}
void f() {
    tracked(R) region rgn = Region.create();
    R:point p = new(rgn) point {x=3; y=4;};
    int v = use(rgn, p);
    Region.delete(rgn);
}
""")

    def test_free_on_tracked_struct(self):
        assert_ok(POINT + """
void f() {
    tracked(K) point p = new tracked point {x=1; y=2;};
    p.x++;
    free(p);
}
""")

    def test_double_free_rejected(self):
        assert_rejected(POINT + """
void f() {
    tracked(K) point p = new tracked point {x=1; y=2;};
    free(p);
    free(p);
}
""", Code.KEY_NOT_HELD)

    def test_use_after_free_rejected(self):
        assert_rejected(POINT + """
void f() {
    tracked(K) point p = new tracked point {x=1; y=2;};
    free(p);
    p.x++;
}
""", Code.KEY_NOT_HELD)

    def test_free_of_abstract_type_rejected(self):
        assert_rejected("""
void f() {
    tracked(R) region rgn = Region.create();
    free(rgn);
}
""", Code.ABSTRACT_TYPE_USE)

    def test_missing_free_is_leak(self):
        assert_rejected(POINT + """
void f() {
    tracked(K) point p = new tracked point {x=1; y=2;};
    p.x++;
}
""", Code.KEY_LEAKED)

    def test_region_size_keeps_key(self):
        assert_ok("""
int f() {
    tracked(R) region rgn = Region.create();
    int n = Region.size(rgn);
    Region.delete(rgn);
    return n;
}
""")

    def test_uninitialized_region_variable_rejected(self):
        report_codes = codes("""
void f() {
    tracked(R) region rgn = Region.create();
    tracked region other;
    Region.delete(other);
    Region.delete(rgn);
}
""")
        assert Code.UNDEFINED_NAME in report_codes
