"""Dynamic key monitor tests: run-time enforcement of effect clauses."""

import pytest

from repro.api import load_context
from repro.diagnostics import Code, RuntimeProtocolError
from repro.runtime.monitor import KeyMonitor, MonitoredInterpreter, make_monitored


def monitored(source):
    ctx, reporter = load_context(source)
    assert reporter.ok, reporter.render()
    return make_monitored(ctx)


class TestMonitorCleanRuns:
    def test_clean_file_program(self):
        m = monitored("""
int main() {
    tracked(F) FILE f = fopen("x");
    fputb(f, 7);
    int n = flen(f);
    fclose(f);
    return n;
}
""")
        assert m.call("main") == 1
        assert m.monitor.audit() == []
        assert m.monitor.checks > 0

    def test_clean_socket_program(self):
        m = monitored("""
void main() {
    sockaddr addr = new sockaddr { host = "h"; port = 3; };
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    Socket.bind(s, addr);
    Socket.listen(s, 4);
    Socket.close(s);
}
""")
        m.call("main")
        assert m.monitor.audit() == []

    def test_clean_region_program(self):
        m = monitored("""
struct point { int x; int y; }
int main() {
    tracked(R) region rgn = Region.create();
    R:point p = new(rgn) point {x=1; y=2;};
    int v = p.x;
    Region.delete(rgn);
    return v;
}
""")
        assert m.call("main") == 1
        assert m.monitor.audit() == []

    def test_transaction_lifecycle(self):
        m = monitored("""
void main() {
    tracked(T) txn t = Tx.begin();
    Tx.put(t, "k", 9);
    Tx.commit(t);
}
""")
        m.call("main")
        assert m.monitor.audit() == []


class TestMonitorDetections:
    def run_expect(self, source, code):
        m = monitored(source)
        with pytest.raises(RuntimeProtocolError) as exc:
            m.call("main")
        assert exc.value.code is code
        return m

    def test_double_close(self):
        self.run_expect("""
void main() {
    tracked(F) FILE f = fopen("x");
    fclose(f);
    fclose(f);
}
""", Code.RT_DANGLING)

    def test_wrong_state_transition(self):
        self.run_expect("""
void main() {
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    Socket.listen(s, 4);
    Socket.close(s);
}
""", Code.RT_PROTOCOL)

    def test_use_after_commit(self):
        self.run_expect("""
void main() {
    tracked(T) txn t = Tx.begin();
    Tx.commit(t);
    Tx.put(t, "k", 1);
}
""", Code.RT_DANGLING)

    def test_leak_found_by_audit(self):
        m = monitored("""
void main() {
    tracked(F) FILE f = fopen("x");
}
""")
        m.call("main")
        assert len(m.monitor.audit()) == 1
        with pytest.raises(RuntimeProtocolError) as exc:
            m.monitor.assert_no_leaks()
        assert exc.value.code is Code.RT_LEAK

    def test_free_consumes_runtime_key(self):
        m = monitored("""
struct point { int x; int y; }
void main() {
    tracked(K) point p = new tracked point {x=1; y=2;};
    free(p);
}
""")
        m.call("main")
        assert m.monitor.audit() == []

    def test_detection_is_path_dependent(self):
        # The same buggy function goes unnoticed when the faulty path
        # does not execute — the monitor's fundamental weakness.
        source = """
void maybe_leak(bool trigger) {
    tracked(F) FILE f = fopen("x");
    if (trigger) {
        int n = flen(f);
    } else {
        fclose(f);
    }
}
"""
        ctx, reporter = load_context(source)
        m = make_monitored(ctx)
        m.call("maybe_leak", [False])
        assert m.monitor.audit() == []       # good path: nothing seen
        m.call("maybe_leak", [True])
        assert len(m.monitor.audit()) == 1   # bad path: leak appears

    def test_violations_recorded(self):
        m = monitored("""
void main() {
    tracked(F) FILE f = fopen("x");
    fclose(f);
    fclose(f);
}
""")
        with pytest.raises(RuntimeProtocolError):
            m.call("main")
        assert m.monitor.violations


class TestMonitorOverhead:
    def test_monitor_pays_per_call_bookkeeping(self):
        # The same workload costs checks under the monitor and zero
        # under the plain interpreter — the run-time tax the paper's
        # static approach avoids.
        source = """
int main() {
    tracked(F) FILE f = fopen("x");
    int i = 0;
    while (i < 50) {
        fputb(f, i);
        i++;
    }
    int n = flen(f);
    fclose(f);
    return n;
}
"""
        m = monitored(source)
        assert m.call("main") == 50
        assert m.monitor.checks >= 52   # one per effectful call


class TestLeakAttribution:
    LEAK_IN_HELPER = """
void helper() {
    tracked(F) FILE f = fopen("x");
}

void main() {
    helper();
}
"""

    def test_audit_names_the_minting_function(self):
        m = monitored(self.LEAK_IN_HELPER)
        m.call("main")
        reports = m.monitor.audit()
        assert len(reports) == 1
        assert "(created in helper)" in reports[0]

    def test_leak_event_carries_origin(self):
        m = monitored(self.LEAK_IN_HELPER)
        m.call("main")
        m.monitor.audit()
        leaks = m.monitor.events.by_kind("key_leak")
        assert len(leaks) == 1
        assert leaks[0].fields["origin"] == "helper"
        assert leaks[0].fields["state"]
        mints = m.monitor.events.by_kind("key_mint")
        assert len(mints) == 1
        assert mints[0].fields["origin"] == "helper"

    def test_shared_event_bus(self):
        from repro.obs import EventLog
        from repro.api import load_context
        from repro.runtime.monitor import make_monitored
        bus = EventLog()
        kinds = []
        bus.subscribe(lambda e: kinds.append(e.kind))
        ctx, reporter = load_context("""
void main() {
    tracked(F) FILE f = fopen("x");
    fclose(f);
}
""")
        assert reporter.ok
        m = make_monitored(ctx, events=bus)
        m.call("main")
        assert m.monitor.audit() == []
        assert "key_mint" in kinds
        assert "key_consume" in kinds

    def test_origin_tracks_nested_calls(self):
        m = monitored("""
void inner() {
    tracked(F) FILE f = fopen("inner");
}

void outer() {
    tracked(F) FILE g = fopen("outer");
    inner();
}

void main() {
    outer();
}
""")
        m.call("main")
        reports = sorted(m.monitor.audit())
        assert len(reports) == 2
        assert any("(created in inner)" in r for r in reports)
        assert any("(created in outer)" in r for r in reports)
