"""Substitution and signature-instantiation unit tests (§3.2)."""

from repro.core import (ANY_STATE, AtMostState, CArg, CArray, CBase,
                        CGuarded, CNamed, CPacked, CTracked, CTypeVar,
                        CoreEffect, CoreEffectItem, ExactState, KeyVarRef,
                        SigParam, Signature, StateVar, StateVarRef, Subst,
                        fresh_key)


class TestBinding:
    def test_bind_key_once(self):
        subst = Subst()
        key = fresh_key("F")
        assert subst.bind_key("F", key)
        assert subst.keys["F"] is key

    def test_conflicting_key_binding_rejected(self):
        subst = Subst()
        assert subst.bind_key("F", fresh_key("F"))
        assert not subst.bind_key("F", fresh_key("F"))

    def test_rebinding_same_key_ok(self):
        subst = Subst()
        key = fresh_key("F")
        assert subst.bind_key("F", key)
        assert subst.bind_key("F", key)

    def test_bind_state(self):
        subst = Subst()
        assert subst.bind_state("S", "raw")
        assert not subst.bind_state("S", "named")
        assert subst.bind_state("S", "raw")

    def test_bind_state_var_by_identity(self):
        subst = Subst()
        var = StateVar("lvl")
        assert subst.bind_state("S", var)
        assert subst.bind_state("S", var)
        assert not subst.bind_state("S", StateVar("lvl"))

    def test_bind_type(self):
        subst = Subst()
        assert subst.bind_type("T", CBase("int"))
        assert not subst.bind_type("T", CBase("bool"))


class TestApplication:
    def test_tracked_key_substitution(self):
        key = fresh_key("F")
        subst = Subst(keys={"F": key})
        result = subst.ctype(CTracked(KeyVarRef("F"), CBase("int")))
        assert result.key is key

    def test_unbound_key_var_survives(self):
        subst = Subst()
        result = subst.ctype(CTracked(KeyVarRef("F"), CBase("int")))
        assert result.key == KeyVarRef("F")

    def test_guard_substitution(self):
        key = fresh_key("K")
        subst = Subst(keys={"K": key})
        guarded = CGuarded(((KeyVarRef("K"), ANY_STATE),), CBase("int"))
        result = subst.ctype(guarded)
        assert result.guards[0][0] is key

    def test_state_arg_substitution(self):
        subst = Subst(states={"S": "named"})
        named = CNamed("KIRQL", (CArg("state", state=StateVarRef("S")),))
        result = subst.ctype(named)
        assert result.args[0].state == "named"

    def test_type_var_substitution(self):
        subst = Subst(types={"T": CBase("byte")})
        result = subst.ctype(CArray(CTypeVar("T")))
        assert result == CArray(CBase("byte"))

    def test_packed_state_req(self):
        subst = Subst(states={"S": "ready"})
        packed = CPacked(CBase("int"), ExactState(StateVarRef("S")))
        result = subst.ctype(packed)
        assert result.state == ExactState("ready")

    def test_atmost_resolved_when_var_bound(self):
        subst = Subst(states={"lvl": "APC_LEVEL"})
        req = subst.state_req(AtMostState("lvl", "DISPATCH_LEVEL"))
        assert req == ExactState("APC_LEVEL")

    def test_atmost_kept_when_unbound(self):
        subst = Subst()
        req = subst.state_req(AtMostState("lvl", "DISPATCH_LEVEL"))
        assert req == AtMostState("lvl", "DISPATCH_LEVEL")


class TestEffectSubstitution:
    def test_effect_key_resolution(self):
        key = fresh_key("K")
        subst = Subst(keys={"K": key})
        eff = CoreEffect((CoreEffectItem("consume", "K"),))
        result = subst.effect(eff)
        assert result.items[0].key is key

    def test_effect_unbound_key_stays_a_name(self):
        subst = Subst()
        eff = CoreEffect((CoreEffectItem("keep", "IRQL"),))
        assert subst.effect(eff).items[0].key == "IRQL"


class TestSignatureSubstitution:
    def test_shadowed_vars_untouched(self):
        # Substituting K must not reach inside a nested signature that
        # generalises its own K.
        key = fresh_key("K")
        inner = Signature(
            name="cb",
            params=(SigParam(CTracked(KeyVarRef("K"), CBase("int")), "x"),),
            ret=CBase("void"),
            effect=CoreEffect((CoreEffectItem("consume", "K"),)),
            key_vars=("K",))
        subst = Subst(keys={"K": key})
        result = subst.signature(inner)
        assert result.params[0].type.key == KeyVarRef("K")
        assert result.effect.items[0].key == "K"

    def test_free_vars_substituted(self):
        key = fresh_key("I")
        inner = Signature(
            name="cb",
            params=(SigParam(CTracked(KeyVarRef("I"), CBase("int")), "x"),),
            ret=CBase("void"),
            effect=CoreEffect((CoreEffectItem("consume", "I"),)),
            key_vars=())    # I is free: bound by the enclosing signature
        subst = Subst(keys={"I": key})
        result = subst.signature(inner)
        assert result.params[0].type.key is key
        assert result.effect.items[0].key is key
