"""Transaction protocol tests: static checking, execution, substrate."""

import pytest

from repro.db import TxStore
from repro.diagnostics import Code, RuntimeProtocolError

from conftest import assert_ok, assert_rejected, run_program


class TestStaticProtocol:
    def test_begin_use_commit(self):
        assert_ok("""
int main() {
    tracked(T) txn t = Tx.begin();
    Tx.put(t, "balance", 100);
    int v = Tx.get(t, "balance");
    Tx.commit(t);
    return v;
}
""")

    def test_abort_path(self):
        assert_ok("""
void main() {
    tracked(T) txn t = Tx.begin();
    Tx.put(t, "x", 1);
    Tx.abort(t);
}
""")

    def test_forgotten_transaction_is_leak(self):
        assert_rejected("""
void main() {
    tracked(T) txn t = Tx.begin();
    Tx.put(t, "x", 1);
}
""", Code.KEY_LEAKED)

    def test_use_after_commit(self):
        assert_rejected("""
void main() {
    tracked(T) txn t = Tx.begin();
    Tx.commit(t);
    Tx.put(t, "x", 1);
}
""", Code.KEY_CONSUMED_MISSING)

    def test_double_commit(self):
        assert_rejected("""
void main() {
    tracked(T) txn t = Tx.begin();
    Tx.commit(t);
    Tx.commit(t);
}
""", Code.KEY_CONSUMED_MISSING)

    def test_commit_then_abort(self):
        assert_rejected("""
void main() {
    tracked(T) txn t = Tx.begin();
    Tx.commit(t);
    Tx.abort(t);
}
""", Code.KEY_CONSUMED_MISSING)

    def test_conditional_finish_must_cover_both_paths(self):
        assert_rejected("""
void main(bool ok) {
    tracked(T) txn t = Tx.begin();
    Tx.put(t, "x", 1);
    if (ok) {
        Tx.commit(t);
    }
}
""", Code.JOIN_MISMATCH)

    def test_conditional_commit_or_abort_ok(self):
        assert_ok("""
void main(bool ok) {
    tracked(T) txn t = Tx.begin();
    Tx.put(t, "x", 1);
    if (ok) {
        Tx.commit(t);
    } else {
        Tx.abort(t);
    }
}
""")

    def test_two_transactions_independent(self):
        assert_ok("""
int main() {
    tracked(A) txn a = Tx.begin();
    tracked(B) txn b = Tx.begin();
    Tx.put(a, "x", 1);
    Tx.put(b, "y", 2);
    Tx.commit(a);
    int v = Tx.get(b, "y");
    Tx.abort(b);
    return v;
}
""")

    def test_helper_with_active_requirement(self):
        assert_ok("""
void credit(tracked(T) txn t, int amount) [T@active] {
    int old = Tx.get(t, "balance");
    Tx.put(t, "balance", old + amount);
}
int main() {
    tracked(T) txn t = Tx.begin();
    credit(t, 50);
    credit(t, 25);
    int v = Tx.get(t, "balance");
    Tx.commit(t);
    return v;
}
""")


class TestExecution:
    def test_committed_writes_persist(self):
        result, host = run_program("""
int main() {
    tracked(T) txn t = Tx.begin();
    Tx.put(t, "k", 41);
    Tx.commit(t);
    tracked(U) txn u = Tx.begin();
    int v = Tx.get(u, "k") + 1;
    Tx.commit(u);
    return v;
}
""")
        assert result == 42
        assert host.store.data["k"] == 41
        assert host.audit() == []

    def test_aborted_writes_roll_back(self):
        result, host = run_program("""
int main() {
    tracked(T) txn t = Tx.begin();
    Tx.put(t, "k", 99);
    Tx.abort(t);
    tracked(U) txn u = Tx.begin();
    int v = Tx.get(u, "k");
    Tx.commit(u);
    return v;
}
""")
        assert result == 0
        assert "k" not in host.store.data

    def test_snapshot_within_transaction(self):
        result, _host = run_program("""
int main() {
    tracked(T) txn t = Tx.begin();
    Tx.put(t, "k", 7);
    int seen = Tx.get(t, "k");
    Tx.commit(t);
    return seen;
}
""")
        assert result == 7


class TestSubstrate:
    def test_use_after_commit_faults(self):
        store = TxStore()
        txn = store.begin()
        store.commit(txn)
        with pytest.raises(RuntimeProtocolError) as exc:
            store.put(txn, "k", 1)
        assert exc.value.code is Code.RT_DANGLING

    def test_double_commit_faults(self):
        store = TxStore()
        txn = store.begin()
        store.commit(txn)
        with pytest.raises(RuntimeProtocolError):
            store.commit(txn)

    def test_audit_reports_active(self):
        store = TxStore()
        txn = store.begin()
        assert store.audit() == [txn.id]
        store.abort(txn)
        assert store.audit() == []

    def test_counters(self):
        store = TxStore()
        store.commit(store.begin())
        store.abort(store.begin())
        assert store.commits == 1
        assert store.aborts == 1
