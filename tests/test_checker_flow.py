"""Checker tests: control-flow joins (Figure 5), the join abstraction
(§3), and loop-invariant inference."""

from repro.diagnostics import Code

from conftest import POINT, assert_ok, assert_rejected, codes


class TestJoins:
    def test_figure5_data_correlation_rejected(self):
        # Memory-safe in fact, but the key sets disagree at the join —
        # the classic limitation of type-based checking (§2.4).
        result = codes(POINT + """
void main() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=4; y=2;};
    if (pt.x > 0) {
        pt.y = 0;
        Region.delete(rgn);
    } else {
        pt.y = pt.x;
    }
    if (pt.x <= 0) {
        Region.delete(rgn);
    }
}
""")
        assert Code.JOIN_MISMATCH in result

    def test_figure5_fix_with_keyed_variant(self):
        # The paper's prescribed fix: make the correlation explicit
        # with a keyed variant and switch on it.
        assert_ok(POINT + """
void main() {
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {x=4; y=2;};
    tracked opt_key<R> status;
    if (pt.x > 0) {
        pt.y = 0;
        Region.delete(rgn);
        status = 'NoKey;
    } else {
        pt.y = pt.x;
        status = 'SomeKey{R};
    }
    switch (status) {
        case 'NoKey:
            int done = 0;
        case 'SomeKey:
            Region.delete(rgn);
    }
}
""")

    def test_both_branches_delete_ok(self):
        assert_ok(POINT + """
void f(bool c) {
    tracked(R) region rgn = Region.create();
    if (c) {
        Region.delete(rgn);
    } else {
        Region.delete(rgn);
    }
}
""")

    def test_state_disagreement_at_join(self):
        assert_rejected("""
void f(bool c) {
    sockaddr addr = new sockaddr { host = "h"; port = 1; };
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    if (c) {
        Socket.bind(s, addr);
    }
    Socket.close(s);
}
""", Code.JOIN_MISMATCH)

    def test_same_transition_both_branches_ok(self):
        assert_ok("""
void f(bool c) {
    sockaddr a1 = new sockaddr { host = "h"; port = 1; };
    sockaddr a2 = new sockaddr { host = "h"; port = 2; };
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    if (c) {
        Socket.bind(s, a1);
    } else {
        Socket.bind(s, a2);
    }
    Socket.listen(s, 4);
    Socket.close(s);
}
""")

    def test_join_abstraction_renames_branch_local_keys(self):
        # Each branch creates its own region; the α-abstraction (§3)
        # unifies them through the variable binding.
        assert_ok("""
void f(bool c) {
    tracked region rgn;
    if (c) {
        rgn = Region.create();
    } else {
        rgn = Region.create();
    }
    Region.delete(rgn);
}
""")

    def test_early_return_branch_is_not_joined(self):
        assert_ok(POINT + """
int f(bool c) {
    tracked(R) region rgn = Region.create();
    if (c) {
        Region.delete(rgn);
        return 0;
    }
    R:point p = new(rgn) point {x=1; y=2;};
    int v = p.x;
    Region.delete(rgn);
    return v;
}
""")

    def test_branch_leak_detected_even_with_else_return(self):
        assert_rejected("""
int f(bool c) {
    tracked(R) region rgn = Region.create();
    if (c) {
        return 1;
    }
    Region.delete(rgn);
    return 0;
}
""", Code.KEY_LEAKED)

    def test_nested_ifs_consistent(self):
        assert_ok(POINT + """
void f(int a, int b) {
    tracked(R) region rgn = Region.create();
    R:point p = new(rgn) point {x=1; y=2;};
    if (a > 0) {
        if (b > 0) {
            p.x += a;
        } else {
            p.x -= a;
        }
    } else {
        p.y = b;
    }
    Region.delete(rgn);
}
""")


class TestLoops:
    def test_plain_counting_loop(self):
        assert_ok("""
int f(int n) {
    int i = 0;
    int acc = 0;
    while (i < n) {
        acc += i;
        i++;
    }
    return acc;
}
""")

    def test_loop_with_stable_key_set(self):
        assert_ok(POINT + """
void f(int n) {
    tracked(R) region rgn = Region.create();
    R:point p = new(rgn) point {x=0; y=0;};
    int i = 0;
    while (i < n) {
        p.x += i;
        i++;
    }
    Region.delete(rgn);
}
""")

    def test_region_created_each_iteration_rejected(self):
        # The key set grows every iteration: no invariant exists.
        result = codes("""
void f(int n) {
    int i = 0;
    while (i < n) {
        tracked(R) region rgn = Region.create();
        i++;
    }
}
""")
        assert Code.LOOP_NO_INVARIANT in result or Code.KEY_LEAKED in result

    def test_balanced_create_delete_inside_loop_ok(self):
        assert_ok(POINT + """
void f(int n) {
    int i = 0;
    while (i < n) {
        tracked(R) region rgn = Region.create();
        R:point p = new(rgn) point {x=i; y=0;};
        p.y = p.x * 2;
        Region.delete(rgn);
        i++;
    }
}
""")

    def test_delete_inside_loop_rejected(self):
        # Deleting a pre-loop region inside the body breaks the
        # invariant (second iteration would double-delete).
        result = codes("""
void f(int n) {
    tracked(R) region rgn = Region.create();
    int i = 0;
    while (i < n) {
        Region.delete(rgn);
        i++;
    }
}
""")
        assert Code.LOOP_NO_INVARIANT in result or \
            Code.KEY_CONSUMED_MISSING in result

    def test_break_paths_join_consistently(self):
        assert_ok(POINT + """
int f(int n) {
    tracked(R) region rgn = Region.create();
    R:point p = new(rgn) point {x=0; y=0;};
    int i = 0;
    while (i < n) {
        if (p.x > 100) {
            break;
        }
        p.x += i;
        i++;
    }
    int v = p.x;
    Region.delete(rgn);
    return v;
}
""")

    def test_break_after_delete_disagrees_with_exit(self):
        assert_rejected("""
void f(int n) {
    tracked(R) region rgn = Region.create();
    int i = 0;
    while (i < n) {
        if (i == 2) {
            Region.delete(rgn);
            break;
        }
        i++;
    }
    Region.delete(rgn);
}
""", Code.JOIN_MISMATCH)

    def test_continue_keeps_invariant(self):
        assert_ok("""
int f(int n) {
    int i = 0;
    int acc = 0;
    while (i < n) {
        i++;
        if (i % 2 == 0) {
            continue;
        }
        acc += i;
    }
    return acc;
}
""")

    def test_transfer_loop_with_two_files(self):
        assert_ok("""
void transfer(tracked(A) FILE src, tracked(B) FILE dst, int n) [A, B] {
    int i = 0;
    while (i < n) {
        byte b = fgetb(src);
        fputb(dst, b);
        i++;
    }
}
""")

    def test_tracked_var_rebound_each_iteration(self):
        # Balanced delete + re-create through the same variable: the
        # invariant holds up to the key renaming of §3's abstraction.
        assert_ok("""
void f(int n) {
    tracked region r = Region.create();
    int i = 0;
    while (i < n) {
        Region.delete(r);
        r = Region.create();
        i++;
    }
    Region.delete(r);
}
""")

    def test_tracked_var_reassignment_outside_loop(self):
        assert_ok("""
void f() {
    tracked region r = Region.create();
    Region.delete(r);
    r = Region.create();
    Region.delete(r);
}
""")

    def test_reassignment_without_delete_still_leaks(self):
        assert_rejected("""
void f() {
    tracked region r = Region.create();
    r = Region.create();
    Region.delete(r);
}
""", Code.KEY_LEAKED)

    def test_close_inside_loop_rejected(self):
        result = codes("""
void f(tracked(A) FILE src, int n) [-A] {
    int i = 0;
    while (i < n) {
        fclose(src);
        i++;
    }
}
""")
        assert Code.LOOP_NO_INVARIANT in result or \
            Code.KEY_CONSUMED_MISSING in result


class TestReachability:
    def test_missing_return_detected(self):
        assert_rejected("""
int f(bool c) {
    if (c) {
        return 1;
    }
}
""", Code.MISSING_RETURN)

    def test_return_in_both_branches_ok(self):
        assert_ok("""
int f(bool c) {
    if (c) {
        return 1;
    } else {
        return 2;
    }
}
""")

    def test_void_function_may_fall_off(self):
        assert_ok("void f() { int x = 1; }")

    def test_every_exit_checked_against_postcondition(self):
        # The early return leaks; the late one is fine.
        assert_rejected("""
int f(bool c) {
    tracked(R) region rgn = Region.create();
    if (c) {
        return 1;
    }
    Region.delete(rgn);
    return 0;
}
""", Code.KEY_LEAKED)
