"""Case-study tests: the floppy driver checked, booted and driven
through the simulated kernel (paper §4)."""

import pytest

from repro.diagnostics import RuntimeProtocolError
from repro.drivers import (IOCTL_READ_STATS, FloppyHarness, check_driver,
                           driver_source)
from repro.kernel import (IOCTL_EJECT, IOCTL_GET_GEOMETRY, IOCTL_INSERT,
                          IOCTL_MOTOR_OFF, IOCTL_MOTOR_ON,
                          STATUS_INVALID_DEVICE_REQUEST,
                          STATUS_INVALID_PARAMETER, STATUS_NO_MEDIA,
                          STATUS_SUCCESS)


@pytest.fixture(scope="module")
def harness():
    h = FloppyHarness()
    assert h.reporter.ok, h.reporter.render()
    h.boot()
    return h


class TestStaticCheck:
    def test_driver_checks_clean(self):
        report = check_driver()
        assert report.ok, report.render()

    def test_driver_source_is_substantial(self):
        lines = [l for l in driver_source().splitlines()
                 if l.strip() and not l.strip().startswith("//")]
        assert len(lines) > 150


class TestBasicIo:
    def test_open_close(self, harness):
        assert harness.open().status == STATUS_SUCCESS
        assert harness.close().status == STATUS_SUCCESS

    def test_write_then_read(self, harness):
        payload = b"sector zero payload"
        irp = harness.write(0, payload)
        assert irp.status == STATUS_SUCCESS
        assert irp.information == len(payload)
        read_irp, data = harness.read(0, len(payload))
        assert read_irp.status == STATUS_SUCCESS
        assert data == payload

    def test_read_at_offset(self, harness):
        harness.write(1024, b"offset data")
        _irp, data = harness.read(1024, 11)
        assert data == b"offset data"

    def test_zero_length_read_rejected_by_driver(self, harness):
        irp, _data = harness.read(0, 0)
        assert irp.status == STATUS_INVALID_PARAMETER

    def test_out_of_bounds_read_rejected(self, harness):
        irp, _data = harness.read(harness.device.size_bytes, 512)
        assert irp.status == STATUS_INVALID_PARAMETER

    def test_unknown_ioctl_rejected(self, harness):
        irp = harness.ioctl(0x999)
        assert irp.status == STATUS_INVALID_DEVICE_REQUEST

    def test_geometry_ioctl(self, harness):
        irp = harness.ioctl(IOCTL_GET_GEOMETRY)
        assert irp.status == STATUS_SUCCESS
        assert irp.information == 2880


class TestMediaAndMotor:
    def test_eject_blocks_io(self, harness):
        harness.ioctl(IOCTL_EJECT)
        irp, _ = harness.read(0, 8)
        assert irp.status == STATUS_NO_MEDIA
        write_irp = harness.write(0, b"x")
        assert write_irp.status == STATUS_NO_MEDIA
        harness.ioctl(IOCTL_INSERT)
        irp2, _ = harness.read(0, 8)
        assert irp2.status == STATUS_SUCCESS

    def test_motor_spins_up_via_lower_request(self):
        # A fresh harness: the first read triggers the Figure 7 motor
        # spin-up (IoBuildDeviceIoControlRequest + completion + event).
        h = FloppyHarness()
        h.boot()
        assert not h.device.motor_on
        h.write(0, b"spin")
        assert h.device.motor_on

    def test_motor_off_ioctl(self, harness):
        harness.ioctl(IOCTL_MOTOR_OFF)
        assert not harness.device.motor_on
        # The next transfer spins it back up.
        harness.read(0, 4)
        assert harness.device.motor_on


class TestPnpPath:
    def test_pnp_runs_figure7_idiom(self, harness):
        irp = harness.pnp()
        assert irp.status == STATUS_SUCCESS
        # The completion routine reclaimed the IRP exactly once.
        assert any("reclaimed" in line for line in harness.host.kernel.log)

    def test_io_still_works_after_pnp(self, harness):
        harness.read(0, 4)   # motor on
        harness.pnp()        # driver resets its own motor bookkeeping
        irp, _ = harness.read(0, 4)
        assert irp.status == STATUS_SUCCESS


class TestStatsAndAudit:
    def test_stats_counted_under_lock(self):
        h = FloppyHarness()
        h.boot()
        h.write(0, b"abc")
        h.read(0, 3)
        h.read(0, 3)
        bad, _ = h.read(0, 0)          # error counted too
        total = h.stats_total()
        assert total == 4              # 1 write + 2 reads + 1 error

    def test_no_resource_leaks_after_workload(self):
        h = FloppyHarness()
        h.boot()
        h.open()
        h.write(512, b"workload")
        h.read(512, 8)
        h.ioctl(IOCTL_GET_GEOMETRY)
        h.pnp()
        h.close()
        assert h.audit() == []

    def test_device_saw_real_transfers(self):
        h = FloppyHarness()
        h.boot()
        h.write(0, b"z" * 600)        # spans two sectors
        h.read(0, 600)
        assert h.device.writes == 1
        assert h.device.reads == 1

    def test_kernel_ticks_advanced(self):
        h = FloppyHarness()
        h.boot()
        before = h.host.kernel.ticks
        h.write(0, b"x" * 2048)
        assert h.host.kernel.ticks > before


class TestPendingQueue:
    """§4.1's pending-list idiom: lazy writes parked on a device queue."""

    def make_lazy_harness(self):
        from repro.drivers.floppy import (IOCTL_LAZY_WRITES_ON,
                                          IOCTL_MOTOR_OFF)
        h = FloppyHarness()
        h.boot()
        h.ioctl(IOCTL_LAZY_WRITES_ON)
        h.ioctl(IOCTL_MOTOR_OFF)
        return h

    def test_writes_queue_while_motor_off(self):
        from repro.drivers.floppy import IOCTL_QUEUE_DEPTH
        h = self.make_lazy_harness()
        irp = h.write(0, b"parked")
        assert irp.pending and not irp.completed
        depth = h.ioctl(IOCTL_QUEUE_DEPTH)
        assert depth.information == 1

    def test_flush_completes_queued_writes(self):
        from repro.drivers.floppy import (IOCTL_FLUSH_QUEUE,
                                          IOCTL_QUEUE_DEPTH)
        h = self.make_lazy_harness()
        a = h.write(0, b"first")
        b = h.write(512, b"second")
        h.ioctl(IOCTL_FLUSH_QUEUE)
        h.host.kernel.drain(h.interp)
        assert a.completed and b.completed
        _irp, data = h.read(0, 5)
        assert data == b"first"
        _irp2, data2 = h.read(512, 6)
        assert data2 == b"second"
        assert h.ioctl(IOCTL_QUEUE_DEPTH).information == 0
        assert h.audit() == []

    def test_queued_irps_are_not_leaks(self):
        h = self.make_lazy_harness()
        h.write(0, b"parked")
        assert h.audit() == []   # pended + queued = accounted for

    def test_write_protect_blocks_writes(self):
        from repro.drivers.floppy import (IOCTL_CLEAR_WRITE_PROTECT,
                                          IOCTL_SET_WRITE_PROTECT)
        h = FloppyHarness()
        h.boot()
        h.ioctl(IOCTL_SET_WRITE_PROTECT)
        irp = h.write(0, b"nope")
        assert irp.status == STATUS_INVALID_DEVICE_REQUEST
        h.ioctl(IOCTL_CLEAR_WRITE_PROTECT)
        irp2 = h.write(0, b"yes!")
        assert irp2.status == STATUS_SUCCESS


class TestBuggyDriverAtRuntime:
    def test_unchecked_buggy_driver_faults_dynamically(self):
        # Drop the IoCompleteRequest from FloppyCreate: the kernel's
        # DSTATUS discipline notices at run time (but only when the
        # CREATE path actually executes).
        source = driver_source().replace(
            "    dd.opens++;\n    IrpSetInformation(irp, 0);\n"
            "    return IoCompleteRequest(irp, STATUS_SUCCESS());",
            "    dd.opens++;\n    IrpSetInformation(irp, 0);\n"
            "    return IoMarkIrpPending(irp);", 1)
        assert source != driver_source()
        h = FloppyHarness(check=False, source=source)
        h.boot()
        # Reads still work: the bug is on the CREATE path only.
        h.write(0, b"ok")
        irp = h.open()   # pending forever: the driver dropped it
        assert not irp.completed
        assert h.audit() == []   # marked pending, so not a leak...
        # ...but the request never finishes: that is the silent hang
        # testing has to notice by timeout.
        assert irp.pending

    def test_statically_rejected_buggy_driver(self):
        source = driver_source().replace(
            "    return IoCompleteRequest(irp, STATUS_SUCCESS());\n}\n\n"
            "DSTATUS<I> FloppyClose",
            "    DSTATUS<I> ignored = "
            "IoCompleteRequest(irp, STATUS_SUCCESS());\n"
            "    IrpSetInformation(irp, 1);\n"
            "    return ignored;\n}\n\nDSTATUS<I> FloppyClose", 1)
        assert source != driver_source()
        h = FloppyHarness(check=True, source=source)
        assert not h.reporter.ok
