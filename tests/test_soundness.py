"""Adversarial soundness tests: programs that try to forge, duplicate,
smuggle or launder keys must all be rejected."""

from repro.diagnostics import Code

from conftest import assert_ok, assert_rejected, codes


class TestKeySmuggling:
    def test_guard_key_cannot_escape_via_return(self):
        # A guarded return type naming a local key would hand the
        # caller an obligation it can never resolve.
        assert_rejected("""
K:int make() {
    tracked(K) region rgn = Region.create();
    Region.delete(rgn);
    return 4;
}
""", Code.KEY_ESCAPES_SCOPE)

    def test_tracked_value_cannot_hide_in_plain_field(self):
        # Storing a tracked handle in an untracked field would let the
        # program use it after the key is gone.
        assert_rejected("""
struct bag { region stash; }
void f() {
    tracked(R) region rgn = Region.create();
    bag b = new bag { stash = rgn; };
    Region.delete(rgn);
}
""", Code.TYPE_MISMATCH)

    def test_anonymous_field_cannot_be_read(self):
        # A packed field may be written (consuming the key) but reading
        # it would duplicate the existential.
        assert_rejected("""
struct bag { tracked region stash; }
void f(bag b) {
    tracked region r = b.stash;
    Region.delete(r);
}
""", Code.TRACKED_COPY)

    def test_same_value_cannot_be_consumed_twice_in_one_call(self):
        assert_rejected("""
void both(tracked region a, tracked region b) {
    Region.delete(a);
    Region.delete(b);
}
void f() {
    tracked(R) region rgn = Region.create();
    both(rgn, rgn);
}
""", Code.KEY_NOT_HELD)

    def test_variant_cannot_capture_one_key_twice(self):
        assert_rejected("""
variant pair<key A, key B> [ 'Both {A, B} ];
void f(tracked(X) FILE g) [-X] {
    tracked pair<X, X> p = 'Both{X, X};
    switch (p) {
        case 'Both:
            fclose(g);
    }
}
""", Code.KEY_NOT_HELD)

    def test_distinct_keys_in_pair_accepted(self):
        assert_ok("""
variant pair<key A, key B> [ 'Both {A, B} ];
void f(tracked(X) FILE g, tracked(Y) FILE h) [-X, -Y] {
    tracked pair<X, Y> p = 'Both{X, Y};
    switch (p) {
        case 'Both:
            fclose(g);
            fclose(h);
    }
}
""")

    def test_matching_restores_each_key_once(self):
        # Matching the same variant value twice is impossible: the
        # switch consumed the wrapper key.
        assert_rejected("""
void f(tracked(X) FILE g) [-X] {
    tracked opt_key<X> flag = 'SomeKey{X};
    switch (flag) {
        case 'NoKey:
            int a = 0;
        case 'SomeKey:
            fclose(g);
    }
    switch (flag) {
        case 'NoKey:
            int b = 0;
        case 'SomeKey:
            fclose(g);
    }
}
""", Code.UNDEFINED_NAME)

    def test_cannot_return_consumed_tracked(self):
        assert_rejected("""
tracked(N) FILE broken() [new N] {
    tracked(F) FILE f = fopen("x");
    fclose(f);
    return f;
}
""", Code.KEY_NOT_HELD)

    def test_effectless_wrapper_cannot_launder_consumption(self):
        # Wrapping fclose in a helper with no effect clause does not
        # hide the consumption: the helper itself fails to check.
        assert_rejected("""
void sneaky(tracked(F) FILE f) {
    fclose(f);
}
""", Code.POSTCONDITION_MISMATCH)

    def test_nested_function_cannot_capture_capability(self):
        # Closures may not capture tracked values (the closure could
        # run when the key is gone).
        result = codes("""
void outer() {
    tracked(F) FILE f = fopen("x");
    int peek() {
        return flen(f);
    }
    fclose(f);
    int n = peek();
}
""")
        assert Code.UNDEFINED_NAME in result

    def test_produce_cannot_duplicate_held_key(self):
        # KeWaitForEvent produces the event's key; if the caller still
        # holds it, that is a duplication.
        assert_rejected("""
void f() {
    tracked(F) FILE file = fopen("x");
    KEVENT<F> ev = KeInitializeEvent(file);
    KeWaitForEvent(ev);
    fclose(file);
}
""", Code.KEY_DUPLICATED)


class TestStateLaundering:
    def test_cannot_upgrade_state_via_helper(self):
        # A helper promising raw->ready without doing the work fails at
        # its own definition.
        assert_rejected("""
void fake_ready(tracked(S) sock s) [S@raw->ready] {
}
""", Code.POSTCONDITION_MISMATCH)

    def test_cannot_bypass_bounded_irql(self):
        # Claiming a tighter IRQL bound than the caller can supply
        # fails at the call site.
        assert_rejected("""
void needs_low(KSEMAPHORE s) [IRQL @ (lvl <= APC_LEVEL)] {
    int r = KeReleaseSemaphore(s, 1, 0);
}
void f(KSEMAPHORE s) [IRQL @ DIRQL] {
    needs_low(s);
}
""", Code.KEY_WRONG_STATE)

    def test_state_var_cannot_satisfy_exact_requirement(self):
        # A polymorphic state cannot prove an exact-state precondition.
        assert_rejected("""
void any_state(tracked(S) sock s) [S] {
    Socket.listen(s, 4);
}
""", Code.KEY_WRONG_STATE)

    def test_exact_state_flows_through_helpers(self):
        assert_ok("""
void at_named(tracked(S) sock s) [S@named->listening] {
    Socket.listen(s, 4);
}
void f() {
    sockaddr addr = new sockaddr { host = "h"; port = 2; };
    tracked(S) sock s = Socket.socket('UNIX, 'STREAM, 0);
    Socket.bind(s, addr);
    at_named(s);
    Socket.close(s);
}
""")
