"""Golden-diagnostics corpus: the checker's output, pinned byte-for-byte.

Every ``.vlt`` file shipped in the repository — the examples, the
stdlib interface sources, and the driver case studies — has its exact
``vaultc check`` stdout pinned under ``tests/golden/``.  Four checking
paths must all reproduce those bytes exactly:

* **serial** — plain ``repro.check_source``;
* **parallel** — a :class:`CheckSession` forced through the worker
  pool (``jobs=4``, zero break-even);
* **cached** — a warm session replay, plus a cold cross-process replay
  from an on-disk summary cache;
* **daemon** — a live ``CheckServer`` answering over its socket;
* **shared store** — a cold session replaying another session's
  results out of a content-addressed store (both the on-disk CAS tier
  and the remote tier served by a live daemon).

Regenerate after an intentional diagnostics change with::

    pytest tests/test_golden.py --update-golden
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import check_source
from repro.pipeline import CheckSession, fork_available
from repro.server import DaemonClient

REPO = Path(__file__).resolve().parent.parent
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: repo-relative paths of the whole shipped corpus.
CORPUS = sorted(
    path.relative_to(REPO).as_posix()
    for pattern_root, pattern in (
        (REPO / "examples", "*.vlt"),
        (REPO / "src" / "repro" / "stdlib" / "vault", "*.vlt"),
        (REPO / "src" / "repro" / "drivers" / "vault", "*.vlt"),
    )
    for path in pattern_root.glob(pattern))


def golden_path(rel: str) -> Path:
    return GOLDEN_DIR / (rel.replace("/", "__") + ".golden")


def read_source(rel: str) -> str:
    return (REPO / rel).read_text(encoding="utf-8")


def cli_stdout(ok: bool, render: str, errors: int, rel: str) -> str:
    """Exactly what ``vaultc check <rel>`` writes to stdout."""
    if ok:
        return f"{rel}: OK (protocols verified)\n"
    return f"{render}\n{rel}: {errors} error(s)\n"


def report_stdout(report, rel: str) -> str:
    return cli_stdout(report.ok, report.render(), len(report.errors), rel)


@pytest.fixture(scope="session")
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")


def assert_matches_golden(actual: str, rel: str, update: bool,
                          path_label: str) -> None:
    path = golden_path(rel)
    if update:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(actual, encoding="utf-8")
        return
    assert path.exists(), (
        f"no golden file for {rel}; run pytest tests/test_golden.py "
        f"--update-golden")
    expected = path.read_text(encoding="utf-8")
    assert actual == expected, (
        f"{path_label} output for {rel} diverged from the pinned bytes "
        f"in {path.name}")


# ---------------------------------------------------------------------------
# Serial (this is also the path --update-golden regenerates from)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("rel", CORPUS)
def test_serial_output_matches_golden(rel, update_golden):
    report = check_source(read_source(rel), filename=rel)
    assert_matches_golden(report_stdout(report, rel), rel, update_golden,
                          "serial")


def test_corpus_is_nonempty_and_golden_dir_has_no_strays(update_golden):
    assert len(CORPUS) >= 9
    if update_golden:
        return
    expected = {golden_path(rel).name for rel in CORPUS}
    actual = {p.name for p in GOLDEN_DIR.glob("*.golden")}
    assert actual == expected


def test_update_golden_on_unchanged_tree_is_a_noop(tmp_path, update_golden):
    """Regenerating the corpus from an unchanged tree must reproduce
    ``tests/golden/`` exactly: same file set, same bytes.  Guards the
    ``--update-golden`` round trip itself, not just each file."""
    if update_golden:
        pytest.skip("regeneration run")
    for rel in CORPUS:
        report = check_source(read_source(rel), filename=rel)
        (tmp_path / golden_path(rel).name).write_text(
            report_stdout(report, rel), encoding="utf-8")
    regenerated = {p.name: p.read_text(encoding="utf-8")
                   for p in tmp_path.glob("*.golden")}
    pinned = {p.name: p.read_text(encoding="utf-8")
              for p in GOLDEN_DIR.glob("*.golden")}
    assert regenerated == pinned


# ---------------------------------------------------------------------------
# Parallel: forced through the worker pool
# ---------------------------------------------------------------------------

@pytest.mark.skipif(not fork_available(), reason="needs os.fork")
def test_parallel_output_matches_golden(update_golden):
    with CheckSession(jobs=4, break_even_seconds=0.0) as session:
        for rel in CORPUS:
            report = session.check(read_source(rel), filename=rel)
            assert_matches_golden(report_stdout(report, rel), rel,
                                  update_golden, "parallel (--jobs 4)")


# ---------------------------------------------------------------------------
# Cached: warm in-session replay and cold on-disk replay
# ---------------------------------------------------------------------------

def test_cached_output_matches_golden(tmp_path, update_golden):
    cache = str(tmp_path / "cache")
    with CheckSession(cache_dir=cache) as warm:
        for rel in CORPUS:
            warm.check(read_source(rel), filename=rel)
        for rel in CORPUS:                       # warm replay
            report = warm.check(read_source(rel), filename=rel)
            assert_matches_golden(report_stdout(report, rel), rel,
                                  update_golden, "cached (warm replay)")
    with CheckSession(cache_dir=cache) as cold:  # cross-process replay
        for rel in CORPUS:
            report = cold.check(read_source(rel), filename=rel)
            assert_matches_golden(report_stdout(report, rel), rel,
                                  update_golden, "cached (disk replay)")
        assert cold.stats.functions_checked == 0, \
            "disk cache replay should not re-check anything"


# ---------------------------------------------------------------------------
# Daemon: over the wire (the in-thread daemon fixture lives in conftest)
# ---------------------------------------------------------------------------

@pytest.mark.daemon
@pytest.mark.parametrize("rel", CORPUS)
def test_daemon_output_matches_golden(rel, daemon_socket, update_golden):
    with DaemonClient(daemon_socket) as client:
        reply = client.check(read_source(rel), filename=rel)
    assert reply["ok"] is True
    actual = cli_stdout(reply["check_ok"], reply["render"],
                        reply["errors"], rel)
    assert_matches_golden(actual, rel, update_golden, "daemon")


# ---------------------------------------------------------------------------
# Shared store: a cold session replaying another session's results
# ---------------------------------------------------------------------------

def test_shared_cas_output_matches_golden(tmp_path, update_golden):
    from repro.cache import open_store

    root = str(tmp_path / "cas")
    writer_store = open_store(root)
    try:
        with CheckSession(shared_store=writer_store) as writer:
            for rel in CORPUS:
                writer.check(read_source(rel), filename=rel)
        assert writer.stats.shared_puts > 0
    finally:
        writer_store.close()

    # A brand-new session over a brand-new store handle: everything it
    # knows comes off the CAS directory the writer populated.
    reader_store = open_store(root)
    try:
        with CheckSession(shared_store=reader_store) as reader:
            for rel in CORPUS:
                report = reader.check(read_source(rel), filename=rel)
                assert_matches_golden(report_stdout(report, rel), rel,
                                      update_golden, "shared store (CAS)")
        assert reader.stats.functions_checked == 0, \
            "a shared-store replay should not re-check anything"
        assert reader.stats.shared_unit_hits == len(CORPUS)
    finally:
        reader_store.close()


@pytest.mark.daemon
def test_shared_remote_output_matches_golden(daemon_socket, update_golden):
    from repro.cache import open_store

    writer_store = open_store("daemon:" + daemon_socket)
    try:
        with CheckSession(shared_store=writer_store) as writer:
            for rel in CORPUS:
                writer.check(read_source(rel), filename=rel)
    finally:
        writer_store.close()

    reader_store = open_store("daemon:" + daemon_socket)
    try:
        with CheckSession(shared_store=reader_store) as reader:
            for rel in CORPUS:
                report = reader.check(read_source(rel), filename=rel)
                assert_matches_golden(report_stdout(report, rel), rel,
                                      update_golden, "shared store (remote)")
        assert reader.stats.functions_checked == 0, \
            "a remote-tier replay should not re-check anything"
    finally:
        reader_store.close()
